// ShardedService front door and HashRing contract: argument
// validation, routing purity and balance, the consistent-hashing
// growth property (k -> k+1 moves keys only TO the new shard), swap
// propagation to every replica, aggregate stats, and typed rejection
// after shutdown. Carries the `serve` ctest label; the sanitize builds
// run it under TSan.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "cfg/labeling_cache.h"
#include "dataset/generator.h"
#include "math/rng.h"
#include "serve/sharded_service.h"
#include "soteria/presets.h"
#include "soteria/system.h"

namespace soteria::serve {
namespace {

using core::ErrorCode;

struct ShardedFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    dataset::DatasetConfig data_config;
    data_config.scale = 0.008;
    math::Rng rng(53);
    data = new dataset::Dataset(dataset::generate_dataset(data_config, rng));

    core::SoteriaConfig config = core::tiny_config();
    config.seed = 53;
    model_a = new std::shared_ptr<const core::SoteriaSystem>(
        std::make_shared<const core::SoteriaSystem>(
            core::SoteriaSystem::train(data->train, config)));
    config.seed = 59;
    model_b = new std::shared_ptr<const core::SoteriaSystem>(
        std::make_shared<const core::SoteriaSystem>(
            core::SoteriaSystem::train(data->train, config)));
  }
  static void TearDownTestSuite() {
    delete model_b;
    delete model_a;
    delete data;
    model_b = nullptr;
    model_a = nullptr;
    data = nullptr;
  }

  static dataset::Dataset* data;
  static std::shared_ptr<const core::SoteriaSystem>* model_a;
  static std::shared_ptr<const core::SoteriaSystem>* model_b;
};

dataset::Dataset* ShardedFixture::data = nullptr;
std::shared_ptr<const core::SoteriaSystem>* ShardedFixture::model_a = nullptr;
std::shared_ptr<const core::SoteriaSystem>* ShardedFixture::model_b = nullptr;

TEST(HashRingTest, RejectsZeroCounts) {
  for (const auto& [shards, vnodes] :
       {std::pair<std::size_t, std::size_t>{0, 64},
        std::pair<std::size_t, std::size_t>{4, 0}}) {
    try {
      HashRing ring(shards, vnodes);
      FAIL() << "expected core::Error";
    } catch (const core::Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
    }
  }
}

TEST(HashRingTest, RoutingIsPureAndInRange) {
  const HashRing ring(4, 64);
  const HashRing twin(4, 64);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto hash = math::split_mix64(11 + i);
    const auto shard = ring.shard_of(hash);
    EXPECT_LT(shard, 4U);
    // Same (hash, geometry) => same shard, across ring instances: the
    // route is a pure function, stable across restarts.
    EXPECT_EQ(twin.shard_of(hash), shard);
  }
}

TEST(HashRingTest, KeysSpreadAcrossShardsReasonably) {
  constexpr std::size_t kShards = 4;
  constexpr std::uint64_t kKeys = 8000;
  const HashRing ring(kShards, 64);
  std::vector<int> counts(kShards, 0);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    ++counts[ring.shard_of(math::split_mix64(13 + i))];
  }
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    // Perfect balance is 2000/shard; 64 vnodes keeps every shard
    // within a loose 2x band (tight bounds would make the test a
    // hash-quality lottery).
    EXPECT_GT(counts[shard], static_cast<int>(kKeys / (kShards * 2)))
        << "shard " << shard;
    EXPECT_LT(counts[shard], static_cast<int>(kKeys / 2))
        << "shard " << shard;
  }
}

TEST(HashRingTest, GrowthMovesKeysOnlyToTheNewShard) {
  // The consistent-hashing property the ring's per-shard point
  // derivation exists for: adding shard k to a k-shard ring never
  // reroutes a key between two old shards.
  for (const std::size_t k : {1U, 2U, 4U, 7U}) {
    const HashRing before(k, 64);
    const HashRing after(k + 1, 64);
    int moved = 0;
    for (std::uint64_t i = 0; i < 4000; ++i) {
      const auto hash = math::split_mix64(17 + i);
      const auto old_shard = before.shard_of(hash);
      const auto new_shard = after.shard_of(hash);
      if (new_shard != old_shard) {
        EXPECT_EQ(new_shard, k) << "key rerouted between old shards";
        ++moved;
      }
    }
    // The new shard claims roughly 1/(k+1) of the keyspace — it must
    // claim SOMETHING, or the growth test proves nothing.
    EXPECT_GT(moved, 0) << "k=" << k;
  }
}

TEST_F(ShardedFixture, ConstructorValidatesArguments) {
  try {
    ShardedService service(nullptr, ShardedServiceConfig{});
    FAIL() << "expected core::Error";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }

  ShardedServiceConfig zero_shards;
  zero_shards.num_shards = 0;
  try {
    ShardedService service(*model_a, zero_shards);
    FAIL() << "expected core::Error";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }

  ShardedServiceConfig bad_stores;
  bad_stores.num_shards = 2;
  bad_stores.shard_stores.resize(3);  // 3 stores for 2 shards
  try {
    ShardedService service(*model_a, bad_stores);
    FAIL() << "expected core::Error";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }
}

TEST_F(ShardedFixture, RoutingIsStableAndContentBased) {
  ShardedServiceConfig config;
  config.num_shards = 4;
  config.shard.num_threads = 1;
  ShardedService service(*model_a, config);
  EXPECT_EQ(service.shard_count(), 4U);

  for (const auto& sample : data->test) {
    const auto hash = cfg::LabelingCache::content_hash(sample.cfg);
    const auto shard = service.shard_for(sample.cfg);
    // shard_for is the ring applied to the content hash, and a copy of
    // the same binary routes identically.
    EXPECT_EQ(shard, service.shard_for_hash(hash));
    const cfg::Cfg copy = sample.cfg;
    EXPECT_EQ(service.shard_for(copy), shard);
  }
}

TEST_F(ShardedFixture, RequestsLandOnTheShardTheRingNames) {
  ShardedServiceConfig config;
  config.num_shards = 2;
  config.shard.num_threads = 1;
  config.seed = 67;
  ShardedService service(*model_a, config);

  std::map<std::size_t, std::size_t> expected_per_shard;
  std::vector<ShardedService::Ticket> tickets;
  const std::size_t n = std::min<std::size_t>(data->test.size(), 8);
  for (std::size_t i = 0; i < n; ++i) {
    expected_per_shard[service.shard_for(data->test[i].cfg)]++;
    auto ticket = service.submit(data->test[i].cfg);
    ASSERT_TRUE(ticket.accepted());
    EXPECT_EQ(ticket.id, i);  // global ids are dense across shards
    tickets.push_back(std::move(ticket));
  }
  for (auto& ticket : tickets) EXPECT_NO_THROW((void)ticket.verdict.get());

  const auto stats = service.stats();
  ASSERT_EQ(stats.shards.size(), 2U);
  EXPECT_EQ(stats.total.accepted, n);
  EXPECT_EQ(stats.total.completed, n);
  for (std::size_t shard = 0; shard < stats.shards.size(); ++shard) {
    EXPECT_EQ(stats.shards[shard].accepted, expected_per_shard[shard])
        << "shard " << shard;
    EXPECT_EQ(stats.shards[shard].completed, expected_per_shard[shard])
        << "shard " << shard;
  }
}

TEST_F(ShardedFixture, SwapPropagatesToEveryReplica) {
  ShardedServiceConfig config;
  config.num_shards = 3;
  config.shard.num_threads = 1;
  ShardedService service(*model_a, config);

  service.swap_model(*model_b);
  EXPECT_EQ(service.model().get(), model_b->get());
  for (std::size_t shard = 0; shard < service.shard_count(); ++shard) {
    EXPECT_EQ(service.shard(shard).model().get(), model_b->get())
        << "shard " << shard;
  }
  // One front-door publish counts once, not once per replica.
  EXPECT_EQ(service.stats().total.swaps, 1U);

  try {
    service.swap_model(nullptr);
    FAIL() << "expected Error{kInvalidArgument}";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }
}

TEST_F(ShardedFixture, ShutdownRejectsLateSubmissionsTyped) {
  ShardedServiceConfig config;
  config.num_shards = 2;
  config.shard.num_threads = 1;
  ShardedService service(*model_a, config);

  auto ticket = service.submit(data->test[0].cfg);
  ASSERT_TRUE(ticket.accepted());
  EXPECT_NO_THROW((void)ticket.verdict.get());

  service.shutdown(ShutdownPolicy::kDrain);
  service.shutdown(ShutdownPolicy::kCancel);  // idempotent; first wins

  auto late = service.submit(data->test[0].cfg);
  EXPECT_EQ(late.status, ErrorCode::kShuttingDown);
  EXPECT_FALSE(late.verdict.valid());
  EXPECT_EQ(service.stats().total.rejected, 1U);
  EXPECT_EQ(service.stats().total.completed, 1U);
}

}  // namespace
}  // namespace soteria::serve
