// Deterministic load sweep: every seeded arrival pattern (uniform
// storm, bursty, adversarially skewed shard keys) replayed through the
// sharded, micro-batched serving stack at {1,2,4,8} workers x {1,2,4}
// shards x {1,4,16} max_batch, and every verdict stream compared
// bit-exactly against one serial analyze_batch over the same arrivals.
// This is the determinism contract's enforcement arm: if batching,
// sharding, or worker scheduling ever leaks into the math, one of the
// 36 combinations diverges and names the culprit. Carries the `serve`
// ctest label; the sanitize builds run it under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dataset/generator.h"
#include "load_harness.h"
#include "serve/service.h"
#include "serve/sharded_service.h"
#include "soteria/presets.h"
#include "soteria/system.h"
#include "store/feature_store.h"

namespace soteria::serve {
namespace {

using testing::ArrivalPattern;
using testing::arrival_indices;
using testing::submit_all;

constexpr std::uint64_t kSweepSeed = 71;
constexpr std::size_t kRequests = 24;

struct LoadSweepFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    dataset::DatasetConfig data_config;
    data_config.scale = 0.008;
    math::Rng rng(61);
    const auto data = dataset::generate_dataset(data_config, rng);

    core::SoteriaConfig config = core::tiny_config();
    config.seed = 61;
    model = new std::shared_ptr<const core::SoteriaSystem>(
        std::make_shared<const core::SoteriaSystem>(
            core::SoteriaSystem::train(data.train, config)));

    corpus = new std::vector<std::shared_ptr<const cfg::Cfg>>();
    for (const auto& sample : data.test) {
      corpus->push_back(std::make_shared<const cfg::Cfg>(sample.cfg));
    }

    // One persistent store shared by every combination: repeated
    // (content, fingerprint, walk-seed) keys hit instead of re-walking,
    // which keeps the 36-combination sweep fast — and doubles as a
    // check that verdicts stay bit-identical with the store in play.
    store_dir = new std::filesystem::path(
        std::filesystem::temp_directory_path() / "soteria_load_sweep_store");
    std::error_code ec;
    std::filesystem::remove_all(*store_dir, ec);  // stale runs
    store = new std::shared_ptr<store::FeatureStore>(
        std::make_shared<store::FeatureStore>(
            store::StoreConfig{store_dir->string()}));
  }
  static void TearDownTestSuite() {
    delete store;
    store = nullptr;
    std::error_code ec;
    std::filesystem::remove_all(*store_dir, ec);
    delete store_dir;
    store_dir = nullptr;
    delete corpus;
    corpus = nullptr;
    delete model;
    model = nullptr;
  }

  /// The ground truth for a pattern: serial analyze_batch over the
  /// arrival sequence, request i drawing from Rng(seed).child(i) —
  /// exactly what the service must reproduce at any concurrency.
  [[nodiscard]] static std::vector<core::Verdict> serial_expected(
      const std::vector<std::size_t>& indices) {
    std::vector<const cfg::Cfg*> cfgs;
    std::vector<math::Rng> rngs;
    cfgs.reserve(indices.size());
    rngs.reserve(indices.size());
    const math::Rng base(kSweepSeed);
    for (std::size_t i = 0; i < indices.size(); ++i) {
      cfgs.push_back((*corpus)[indices[i]].get());
      rngs.push_back(base.child(i));
    }
    core::AnalyzeOptions options;
    options.num_threads = 1;
    options.feature_store = *store;
    return (*model)->analyze_batch(cfgs, rngs, options);
  }

  static void run_sweep(ArrivalPattern pattern, std::uint64_t pattern_seed) {
    const auto indices =
        arrival_indices(pattern, corpus->size(), kRequests, pattern_seed);
    ASSERT_EQ(indices.size(), kRequests);
    const auto expected = serial_expected(indices);
    ASSERT_EQ(expected.size(), kRequests);

    for (const std::size_t workers : {1U, 2U, 4U, 8U}) {
      for (const std::size_t shards : {1U, 2U, 4U}) {
        for (const std::size_t batch : {1U, 4U, 16U}) {
          SCOPED_TRACE("workers=" + std::to_string(workers) +
                       " shards=" + std::to_string(shards) +
                       " batch=" + std::to_string(batch));
          ShardedServiceConfig config;
          config.num_shards = shards;
          config.seed = kSweepSeed;
          config.shard.num_threads = workers;
          config.shard.max_batch = batch;
          config.shard.feature_store = *store;
          ShardedService service(*model, config);

          auto tickets = submit_all(service, *corpus, indices);
          ASSERT_EQ(tickets.size(), kRequests);
          // Ids are dense and global across shards, in arrival order.
          for (std::size_t i = 0; i < tickets.size(); ++i) {
            ASSERT_EQ(tickets[i].id, i);
          }
          for (std::size_t i = 0; i < tickets.size(); ++i) {
            const auto verdict = tickets[i].verdict.get();
            EXPECT_EQ(verdict.adversarial, expected[i].adversarial)
                << "request " << i;
            EXPECT_EQ(verdict.predicted, expected[i].predicted)
                << "request " << i;
            EXPECT_EQ(verdict.reconstruction_error,
                      expected[i].reconstruction_error)
                << "request " << i;
          }

          const auto stats = service.stats();
          EXPECT_EQ(stats.total.accepted, kRequests);
          EXPECT_EQ(stats.total.completed, kRequests);
          EXPECT_EQ(stats.total.failed, 0U);
          EXPECT_GE(stats.total.batches, 1U);
        }
      }
    }
  }

  static std::shared_ptr<const core::SoteriaSystem>* model;
  static std::vector<std::shared_ptr<const cfg::Cfg>>* corpus;
  static std::filesystem::path* store_dir;
  static std::shared_ptr<store::FeatureStore>* store;
};

std::shared_ptr<const core::SoteriaSystem>* LoadSweepFixture::model = nullptr;
std::vector<std::shared_ptr<const cfg::Cfg>>* LoadSweepFixture::corpus =
    nullptr;
std::filesystem::path* LoadSweepFixture::store_dir = nullptr;
std::shared_ptr<store::FeatureStore>* LoadSweepFixture::store = nullptr;

TEST_F(LoadSweepFixture, ArrivalPatternsAreSeededAndPure) {
  // Same (pattern, seed) => same arrivals; different seed => different.
  const auto a = arrival_indices(ArrivalPattern::kUniformStorm, 7, 64, 9);
  const auto b = arrival_indices(ArrivalPattern::kUniformStorm, 7, 64, 9);
  const auto c = arrival_indices(ArrivalPattern::kUniformStorm, 7, 64, 10);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (const std::size_t index : a) EXPECT_LT(index, 7U);

  // The skewed pattern really is skewed: its hot key dominates.
  const auto skew =
      arrival_indices(ArrivalPattern::kSkewedShardKey, 7, 200, 9);
  std::vector<std::size_t> counts(7, 0);
  for (const std::size_t index : skew) ++counts[index];
  EXPECT_GE(*std::max_element(counts.begin(), counts.end()), 120U);
}

TEST_F(LoadSweepFixture, UniformStormBitIdenticalAcrossAllCombinations) {
  run_sweep(ArrivalPattern::kUniformStorm, 101);
}

TEST_F(LoadSweepFixture, BurstyArrivalsBitIdenticalAcrossAllCombinations) {
  run_sweep(ArrivalPattern::kBursty, 102);
}

TEST_F(LoadSweepFixture, SkewedShardKeysBitIdenticalAcrossAllCombinations) {
  run_sweep(ArrivalPattern::kSkewedShardKey, 103);
}

}  // namespace
}  // namespace soteria::serve
