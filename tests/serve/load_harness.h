// Deterministic load-generator harness for the serving tests and the
// perf_serve bench: seeded arrival patterns over a fixed CFG corpus,
// submitted through either service front door, with the resulting
// verdict stream checked bit-exactly against a serial analyze_batch.
//
// The harness is header-only and allocation-light on purpose: the same
// code drives the 36-combination bit-identity sweep in
// load_harness_test.cpp and (by inclusion) any future soak test, so a
// behavior difference between "test traffic" and "bench traffic" can't
// creep in.
//
// Determinism: every pattern is a pure function of (seed, corpus size,
// request count). Submission happens from ONE thread in pattern order,
// with yield-retry on per-shard backpressure, so the accepted sequence
// — and therefore the dense request ids — is exactly the pattern
// order regardless of worker count, shard count, or micro-batch size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "cfg/cfg.h"
#include "math/rng.h"
#include "soteria/error.h"

namespace soteria::serve::testing {

/// Seeded arrival patterns: which corpus entry each request presents.
enum class ArrivalPattern {
  /// Every request draws uniformly at random from the corpus — the
  /// steady-state storm where all shards and caches stay warm.
  kUniformStorm,
  /// Requests arrive in runs of the same binary (burst length drawn
  /// from [1, 8]) — stresses micro-batch packing and the per-shard
  /// labeling/feature caches with repeated keys.
  kBursty,
  /// 80% of requests hammer one "hot" binary with the rest uniform —
  /// adversarially skewed shard keys: one shard absorbs most of the
  /// load while the others idle, the worst case for a consistent-hash
  /// front door.
  kSkewedShardKey,
};

/// The corpus indices requests present, in submission order. Pure
/// function of its arguments (no global state, no clock).
inline std::vector<std::size_t> arrival_indices(ArrivalPattern pattern,
                                                std::size_t corpus_size,
                                                std::size_t requests,
                                                std::uint64_t seed) {
  std::vector<std::size_t> indices;
  indices.reserve(requests);
  math::Rng rng(seed);
  switch (pattern) {
    case ArrivalPattern::kUniformStorm:
      for (std::size_t i = 0; i < requests; ++i) {
        indices.push_back(rng.index(corpus_size));
      }
      break;
    case ArrivalPattern::kBursty:
      while (indices.size() < requests) {
        const auto index = rng.index(corpus_size);
        const std::size_t burst = 1 + rng.index(8);
        for (std::size_t b = 0; b < burst && indices.size() < requests;
             ++b) {
          indices.push_back(index);
        }
      }
      break;
    case ArrivalPattern::kSkewedShardKey: {
      const std::size_t hot = rng.index(corpus_size);
      for (std::size_t i = 0; i < requests; ++i) {
        const bool hammer = rng.index(10) < 8;  // 80% hot key
        indices.push_back(hammer ? hot : rng.index(corpus_size));
      }
      break;
    }
  }
  return indices;
}

/// Submits `indices` through `service` from the calling thread in
/// order, spinning (yield) through per-shard kQueueFull backpressure so
/// every request is eventually accepted and the accepted order equals
/// the arrival order. Works for AnalysisService and ShardedService —
/// anything with `Ticket submit(std::shared_ptr<const cfg::Cfg>)`.
/// Returns one accepted ticket per request, in submission order.
template <typename Service>
std::vector<typename Service::Ticket> submit_all(
    Service& service,
    const std::vector<std::shared_ptr<const cfg::Cfg>>& corpus,
    const std::vector<std::size_t>& indices) {
  std::vector<typename Service::Ticket> tickets;
  tickets.reserve(indices.size());
  for (const std::size_t index : indices) {
    for (;;) {
      auto ticket = service.submit(corpus[index]);
      if (ticket.accepted()) {
        tickets.push_back(std::move(ticket));
        break;
      }
      // Backpressure is the only acceptable rejection mid-run; anything
      // else (kShuttingDown, ...) means the harness is misused.
      if (ticket.status != core::ErrorCode::kQueueFull) {
        throw core::Error(core::ErrorCode::kInternal,
                          "load harness: unexpected submit rejection");
      }
      std::this_thread::yield();
    }
  }
  return tickets;
}

}  // namespace soteria::serve::testing
