// BoundedMpmcQueue contract: backpressure at exact capacity, FIFO
// delivery, pause/close/take_all semantics, and multi-producer /
// multi-consumer safety (this suite carries the `serve` ctest label and
// runs under TSan in the sanitize builds).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/queue.h"

namespace soteria::serve {
namespace {

TEST(BoundedMpmcQueue, ZeroCapacityIsRejectedWithTypedError) {
  try {
    BoundedMpmcQueue<int> queue(0);
    FAIL() << "expected core::Error";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), core::ErrorCode::kInvalidArgument);
  }
}

TEST(BoundedMpmcQueue, RejectsAtExactCapacity) {
  BoundedMpmcQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(queue.try_push(i), PushStatus::kAccepted) << i;
  }
  EXPECT_EQ(queue.size(), 4U);
  // The capacity + 1 push is rejected, not blocked or dropped silently.
  EXPECT_EQ(queue.try_push(4), PushStatus::kFull);
  EXPECT_EQ(queue.size(), 4U);
  // Freeing one slot re-admits exactly one item.
  EXPECT_EQ(queue.pop().value(), 0);
  EXPECT_EQ(queue.try_push(4), PushStatus::kAccepted);
  EXPECT_EQ(queue.try_push(5), PushStatus::kFull);
}

TEST(BoundedMpmcQueue, DeliversFifo) {
  BoundedMpmcQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) ASSERT_EQ(queue.try_push(i), PushStatus::kAccepted);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(queue.pop().value(), i);
}

TEST(BoundedMpmcQueue, CloseStopsProducersAndDrainsConsumers) {
  BoundedMpmcQueue<int> queue(8);
  ASSERT_EQ(queue.try_push(1), PushStatus::kAccepted);
  ASSERT_EQ(queue.try_push(2), PushStatus::kAccepted);
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.try_push(3), PushStatus::kClosed);
  // Consumers still see the queued items, then the exit sentinel.
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.pop().value(), 2);
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(BoundedMpmcQueue, TakeAllEmptiesAtomically) {
  BoundedMpmcQueue<int> queue(8);
  for (int i = 0; i < 3; ++i) ASSERT_EQ(queue.try_push(i), PushStatus::kAccepted);
  const auto taken = queue.take_all();
  EXPECT_EQ(taken, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.size(), 0U);
  queue.close();
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(BoundedMpmcQueue, PauseHoldsConsumersUntilResume) {
  BoundedMpmcQueue<int> queue(4);
  queue.pause();
  ASSERT_EQ(queue.try_push(7), PushStatus::kAccepted);

  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, 7);
    popped.store(true);
  });
  // The consumer must not make progress while paused (a bounded wait —
  // this can only fail if pause is broken, never spuriously pass).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(popped.load());
  EXPECT_EQ(queue.size(), 1U);

  queue.resume();
  consumer.join();
  EXPECT_TRUE(popped.load());
}

TEST(BoundedMpmcQueue, ConcurrentProducersAndConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 200;
  BoundedMpmcQueue<int> queue(16);

  std::mutex sink_mutex;
  std::vector<int> sink;
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.pop()) {
        std::lock_guard<std::mutex> lock(sink_mutex);
        sink.push_back(*item);
      }
    });
  }

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        // Backpressure shows up as kFull under load; retry until the
        // consumers free a slot.
        while (queue.try_push(value) == PushStatus::kFull) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& producer : producers) producer.join();
  queue.close();
  for (auto& consumer : consumers) consumer.join();

  ASSERT_EQ(sink.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(sink.begin(), sink.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_EQ(sink[static_cast<std::size_t>(i)], i);
  }
}

}  // namespace
}  // namespace soteria::serve
