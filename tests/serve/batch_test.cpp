// Micro-batch boundary properties: the places where batching could
// corrupt the service contract if it were wired naively. Deadline
// expiry of a request already drained into a batch, shutdown landing
// between drain and execute (both policies), a hot swap landing in the
// same window (no torn batches), and per-shard backpressure at exact
// capacity. The config.batch_hook test seam makes each race
// deterministic: it runs after the batch is drained and the model
// pinned, before inference starts. Carries the `serve` ctest label;
// the sanitize builds run it under TSan.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "dataset/generator.h"
#include "serve/service.h"
#include "serve/sharded_service.h"
#include "soteria/presets.h"
#include "soteria/system.h"

namespace soteria::serve {
namespace {

using core::ErrorCode;
using Clock = std::chrono::steady_clock;

constexpr auto kAlreadyExpired = Clock::time_point::min();

struct BatchFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    dataset::DatasetConfig data_config;
    data_config.scale = 0.008;
    math::Rng rng(43);
    data = new dataset::Dataset(dataset::generate_dataset(data_config, rng));

    core::SoteriaConfig config = core::tiny_config();
    config.seed = 43;
    model_a = new std::shared_ptr<const core::SoteriaSystem>(
        std::make_shared<const core::SoteriaSystem>(
            core::SoteriaSystem::train(data->train, config)));
    config.seed = 47;
    model_b = new std::shared_ptr<const core::SoteriaSystem>(
        std::make_shared<const core::SoteriaSystem>(
            core::SoteriaSystem::train(data->train, config)));
  }
  static void TearDownTestSuite() {
    delete model_b;
    delete model_a;
    delete data;
    model_b = nullptr;
    model_a = nullptr;
    data = nullptr;
  }

  [[nodiscard]] static cfg::Cfg sample(std::size_t i) {
    return data->test[i % data->test.size()].cfg;
  }

  static dataset::Dataset* data;
  static std::shared_ptr<const core::SoteriaSystem>* model_a;
  static std::shared_ptr<const core::SoteriaSystem>* model_b;
};

dataset::Dataset* BatchFixture::data = nullptr;
std::shared_ptr<const core::SoteriaSystem>* BatchFixture::model_a = nullptr;
std::shared_ptr<const core::SoteriaSystem>* BatchFixture::model_b = nullptr;

TEST_F(BatchFixture, ZeroMaxBatchIsRejected) {
  ServiceConfig config;
  config.max_batch = 0;
  try {
    AnalysisService service(*model_a, config);
    FAIL() << "expected core::Error";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }
}

TEST_F(BatchFixture, ExpiredRequestInsideDrainedBatchFailsAlone) {
  // Three requests drained as ONE batch; the middle one is already
  // expired. It must fail with kDeadlineExceeded while its batchmates
  // complete — expiry is per-request even after batching.
  ServiceConfig config;
  config.num_threads = 1;
  config.max_batch = 8;
  AnalysisService service(*model_a, config);
  service.pause();  // all three queue up before any drain

  auto first = service.submit(sample(0));
  auto doomed = service.submit(sample(1), kAlreadyExpired);
  auto last = service.submit(sample(2));
  ASSERT_TRUE(first.accepted());
  ASSERT_TRUE(doomed.accepted());
  ASSERT_TRUE(last.accepted());
  service.resume();

  EXPECT_NO_THROW((void)first.verdict.get());
  try {
    (void)doomed.verdict.get();
    FAIL() << "expected Error{kDeadlineExceeded}";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
  }
  EXPECT_NO_THROW((void)last.verdict.get());

  const auto stats = service.stats();
  EXPECT_EQ(stats.expired, 1U);
  EXPECT_EQ(stats.completed, 2U);
  // One drain: all three left the queue together.
  EXPECT_EQ(stats.batches, 1U);
}

TEST_F(BatchFixture, HotSwapBetweenDrainAndExecuteNeverTearsABatch) {
  // The hook fires after the batch is drained and its model pinned. We
  // block inside it, land a swap to model_b, then let the batch run:
  // every verdict in the batch must come from model_a (the pinned
  // model), never a mixture — and the NEXT batch must use model_b.
  std::promise<void> drained;
  std::promise<void> swapped;
  auto drained_future = drained.get_future();
  auto swapped_future = swapped.get_future();
  bool first_batch = true;  // hook runs on the single worker thread

  ServiceConfig config;
  config.num_threads = 1;
  config.max_batch = 8;
  config.seed = 77;
  config.batch_hook = [&](std::size_t) {
    if (!first_batch) return;
    first_batch = false;
    drained.set_value();        // batch is off the queue, model pinned
    swapped_future.wait();      // hold until the swap has landed
  };
  AnalysisService service(*model_a, config);
  service.pause();

  constexpr std::size_t kBatch = 4;
  std::vector<AnalysisService::Ticket> tickets;
  for (std::size_t i = 0; i < kBatch; ++i) {
    auto ticket = service.submit(sample(i));
    ASSERT_TRUE(ticket.accepted());
    tickets.push_back(std::move(ticket));
  }
  service.resume();

  drained_future.wait();
  service.swap_model(*model_b);
  swapped.set_value();

  for (std::size_t i = 0; i < kBatch; ++i) {
    const auto verdict = tickets[i].verdict.get();
    math::Rng rng = math::Rng(77).child(i);
    const auto expected = (*model_a)->analyze(sample(i), rng);
    EXPECT_EQ(verdict.adversarial, expected.adversarial) << "request " << i;
    EXPECT_EQ(verdict.reconstruction_error, expected.reconstruction_error)
        << "request " << i;
  }

  // A post-swap submission runs on model_b.
  auto after = service.submit(sample(0));
  ASSERT_TRUE(after.accepted());
  const auto verdict = after.verdict.get();
  math::Rng rng = math::Rng(77).child(kBatch);
  const auto expected = (*model_b)->analyze(sample(0), rng);
  EXPECT_EQ(verdict.reconstruction_error, expected.reconstruction_error);
}

TEST_F(BatchFixture, CancelShutdownMidBatchSparesTheDrainedBatch) {
  // One worker, max_batch 2, five queued requests. The hook blocks the
  // first drained batch while we issue shutdown(kCancel): the two
  // drained requests are already the worker's property and must
  // complete; the three still queued must fail with kCancelled.
  std::promise<void> drained;
  std::promise<void> cancelled;
  auto drained_future = drained.get_future();
  auto cancelled_future = cancelled.get_future();
  bool first_batch = true;

  ServiceConfig config;
  config.num_threads = 1;
  config.max_batch = 2;
  config.batch_hook = [&](std::size_t) {
    if (!first_batch) return;
    first_batch = false;
    drained.set_value();
    cancelled_future.wait();
  };
  AnalysisService service(*model_a, config);
  service.pause();

  constexpr std::size_t kTotal = 5;
  std::vector<AnalysisService::Ticket> tickets;
  for (std::size_t i = 0; i < kTotal; ++i) {
    auto ticket = service.submit(sample(i));
    ASSERT_TRUE(ticket.accepted());
    tickets.push_back(std::move(ticket));
  }
  service.resume();
  drained_future.wait();  // exactly 2 requests are in the worker's hands

  // shutdown() joins the workers, so it must not run on this thread
  // until the hook is released — release first, then shut down.
  cancelled.set_value();
  service.shutdown(ShutdownPolicy::kCancel);

  std::size_t completed = 0;
  std::size_t cancelled_count = 0;
  for (auto& ticket : tickets) {
    try {
      (void)ticket.verdict.get();
      ++completed;
    } catch (const core::Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kCancelled);
      ++cancelled_count;
    }
  }
  // The drained batch (2) completes; the rest are cancelled — unless
  // the worker drained a second batch before shutdown won the race.
  // What must NEVER happen: a drained request getting cancelled.
  EXPECT_EQ(completed + cancelled_count, kTotal);
  EXPECT_GE(completed, 2U);
  EXPECT_EQ(completed % 2, completed == kTotal ? 1U : 0U);

  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, completed);
  EXPECT_EQ(stats.cancelled, cancelled_count);
}

TEST_F(BatchFixture, DrainShutdownMidBatchFinishesEverything) {
  std::promise<void> drained;
  std::promise<void> released;
  auto drained_future = drained.get_future();
  auto released_future = released.get_future();
  bool first_batch = true;

  ServiceConfig config;
  config.num_threads = 1;
  config.max_batch = 2;
  config.batch_hook = [&](std::size_t) {
    if (!first_batch) return;
    first_batch = false;
    drained.set_value();
    released_future.wait();
  };
  AnalysisService service(*model_a, config);
  service.pause();

  constexpr std::size_t kTotal = 5;
  std::vector<AnalysisService::Ticket> tickets;
  for (std::size_t i = 0; i < kTotal; ++i) {
    auto ticket = service.submit(sample(i));
    ASSERT_TRUE(ticket.accepted());
    tickets.push_back(std::move(ticket));
  }
  service.resume();
  drained_future.wait();

  released.set_value();
  service.shutdown(ShutdownPolicy::kDrain);

  for (auto& ticket : tickets) EXPECT_NO_THROW((void)ticket.verdict.get());
  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, kTotal);
  EXPECT_EQ(stats.cancelled, 0U);
  // max_batch 2 over 5 requests needs at least ceil(5/2) = 3 drains.
  EXPECT_GE(stats.batches, 3U);
}

TEST_F(BatchFixture, PerShardBackpressureIsIndependent) {
  // Two shards, tiny queues, paused workers. Hammering ONE shard with
  // the same (hot) binary must fill exactly that shard's queue to
  // kQueueFull while the other shard still accepts — backpressure is a
  // per-shard property, not a global one.
  ShardedServiceConfig config;
  config.num_shards = 2;
  config.shard.queue_depth = 2;
  config.shard.num_threads = 1;
  ShardedService service(*model_a, config);
  service.pause();

  const auto hot = std::make_shared<const cfg::Cfg>(sample(0));
  const std::size_t hot_shard = service.shard_for(*hot);

  // Find a sample routing to the OTHER shard (the corpus is diverse
  // enough that one exists within a handful of tries).
  std::shared_ptr<const cfg::Cfg> cold;
  for (std::size_t i = 1; i < data->test.size(); ++i) {
    auto candidate = std::make_shared<const cfg::Cfg>(sample(i));
    if (service.shard_for(*candidate) != hot_shard) {
      cold = std::move(candidate);
      break;
    }
  }
  ASSERT_NE(cold, nullptr) << "corpus routes entirely to one shard";

  std::vector<ShardedService::Ticket> accepted;
  for (int i = 0; i < 2; ++i) {
    auto ticket = service.submit(hot);
    ASSERT_TRUE(ticket.accepted()) << i;
    accepted.push_back(std::move(ticket));
  }
  auto rejected = service.submit(hot);
  EXPECT_EQ(rejected.status, ErrorCode::kQueueFull);

  // The other shard is unaffected by its neighbor's full queue...
  auto other = service.submit(cold);
  ASSERT_TRUE(other.accepted());
  // ...and the rejected submission did not burn an id: accepted ids
  // stay dense across the reject.
  EXPECT_EQ(other.id, 2U);
  accepted.push_back(std::move(other));

  EXPECT_EQ(service.shard(hot_shard).stats().queue_depth, 2U);
  EXPECT_EQ(service.stats().total.rejected, 1U);

  service.resume();
  for (auto& ticket : accepted) EXPECT_NO_THROW((void)ticket.verdict.get());
  EXPECT_EQ(service.stats().total.completed, 3U);
}

}  // namespace
}  // namespace soteria::serve
