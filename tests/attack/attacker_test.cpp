// Attack-framework tests (`attack` ctest label): executability
// invariants of the binary-level GEA realizations, guard-point
// soundness, family-targeting correctness, registry validation,
// degenerate corpora, and the guided-beats-plain-GEA contract against
// a fitted system.
#include "attack/attacker.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "attack/binary_gea.h"
#include "attack/gea_attacker.h"
#include "attack/guided.h"
#include "attack/registry.h"
#include "attack/targets.h"
#include "cfg/extractor.h"
#include "dataset/generator.h"
#include "isa/vm.h"
#include "obs/metrics.h"
#include "soteria/error.h"
#include "soteria/presets.h"
#include "soteria/system.h"

namespace soteria::attack {
namespace {

// Shared tiny experiment: training dominates suite time, so the fitted
// system is built once.
struct AttackFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    dataset::DatasetConfig data_config;
    data_config.scale = 0.008;
    math::Rng rng(17);
    data = new dataset::Dataset(dataset::generate_dataset(data_config, rng));
    core::SoteriaConfig config = core::tiny_config();
    config.seed = 17;
    system = new core::SoteriaSystem(
        core::SoteriaSystem::train(data->train, config));
  }
  static void TearDownTestSuite() {
    delete system;
    delete data;
    system = nullptr;
    data = nullptr;
  }

  static const dataset::Sample& malware_victim() {
    for (const auto& s : data->test) {
      if (s.family != dataset::Family::kBenign && !s.binary.empty()) {
        return s;
      }
    }
    throw std::logic_error("fixture has no malware test sample");
  }

  static dataset::Dataset* data;
  static core::SoteriaSystem* system;
};

dataset::Dataset* AttackFixture::data = nullptr;
core::SoteriaSystem* AttackFixture::system = nullptr;

/// Behavioural fingerprint of an execution that any transparent guard
/// insertion must preserve exactly.
struct Behaviour {
  isa::VmStatus status;
  std::uint64_t syscalls;
  std::uint64_t max_call_depth;
};

Behaviour run(std::span<const std::uint8_t> image) {
  const isa::VmResult r = isa::execute(image);
  return {r.status, r.syscalls, r.max_call_depth};
}

bool same_behaviour(const Behaviour& a, const Behaviour& b) {
  return a.status == b.status && a.syscalls == b.syscalls &&
         a.max_call_depth == b.max_call_depth;
}

TEST_F(AttackFixture, EntryGuardPreservesExecution) {
  const auto& victim = malware_victim();
  const auto& target = select_target(data->train,
                                     dataset::Family::kBenign,
                                     dataset::TargetSize::kSmall);
  const Behaviour before = run(victim.binary);
  ASSERT_EQ(before.status, isa::VmStatus::kHalted);
  const auto combined = binary_gea(victim.binary, target.binary);
  EXPECT_TRUE(same_behaviour(before, run(combined.image)));
}

TEST_F(AttackFixture, EveryGuardPointPreservesExecution) {
  const auto& victim = malware_victim();
  const auto& target = select_target(data->train,
                                     dataset::Family::kBenign,
                                     dataset::TargetSize::kSmall);
  const Behaviour before = run(victim.binary);
  ASSERT_EQ(before.status, isa::VmStatus::kHalted);

  const auto points = safe_guard_points(victim.binary);
  ASSERT_FALSE(points.empty());
  for (const GuardPoint& point : points) {
    ASSERT_GT(point.boundary, 0U);
    ASSERT_LT(point.boundary, victim.binary.size() / 4);
    ASSERT_LT(point.guard_register, 16U);
    const auto combined = binary_gea_at(victim.binary, target.binary,
                                        point.boundary,
                                        point.guard_register);
    EXPECT_TRUE(same_behaviour(before, run(combined.image)))
        << "guard at boundary " << point.boundary << " (r"
        << static_cast<int>(point.guard_register)
        << ") changed the victim's behaviour";
  }
}

TEST_F(AttackFixture, MultiInjectionPreservesExecution) {
  const auto& victim = malware_victim();
  const std::vector<std::vector<std::uint8_t>> targets = {
      select_target(data->train, dataset::Family::kBenign,
                    dataset::TargetSize::kSmall)
          .binary,
      select_target(data->train, dataset::Family::kBenign,
                    dataset::TargetSize::kMedium)
          .binary,
  };
  const Behaviour before = run(victim.binary);
  const auto combined = binary_gea_multi(victim.binary, targets);
  EXPECT_TRUE(same_behaviour(before, run(combined.image)));
  EXPECT_EQ(combined.target_offsets.size(), 2U);
}

// The deep-placement rule must survive a program that writes the
// conventional guard register (r15) early: the analysis has to fall
// back to a locally dead register instead of giving up.
TEST(SafeGuardPoints, FindsLocallyDeadRegisterWhenAllWrittenEarly) {
  std::vector<std::uint8_t> image;
  // Write every register up front so the never-written rule never fires.
  for (std::uint8_t r = 0; r < 16; ++r) {
    isa::encode_to(isa::Instruction{isa::Opcode::kMovImm, r, 1}, image);
  }
  // idx 16: r1 redefined before any read and before any branch — the
  // boundary right before it admits r1 as the guard register.
  isa::encode_to(isa::Instruction{isa::Opcode::kMovImm, 1, 9}, image);
  isa::encode_to(isa::Instruction{isa::Opcode::kCmpImm, 0, 9}, image);
  isa::encode_to(isa::Instruction{isa::Opcode::kJz, 0, 0}, image);
  isa::encode_to(isa::Instruction{isa::Opcode::kHalt, 0, 0}, image);

  const auto points = safe_guard_points(image);
  const auto at_16 = std::find_if(
      points.begin(), points.end(),
      [](const GuardPoint& p) { return p.boundary == 16; });
  ASSERT_NE(at_16, points.end());
  EXPECT_EQ(at_16->guard_register, 1);
  // Boundaries come out ascending (the spread/deepest selection in the
  // guided attackers depends on the order).
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i - 1].boundary, points[i].boundary);
  }
}

TEST(SafeGuardPoints, RefusesLiveFlagsAndLiveRegisters) {
  std::vector<std::uint8_t> image;
  for (std::uint8_t r = 0; r < 16; ++r) {
    isa::encode_to(isa::Instruction{isa::Opcode::kMovImm, r, 1}, image);
  }
  // idx 16: cmp; idx 17: jz — a guard between them would clobber the
  // flags the jz reads, and every register is read (kAdd) before being
  // written past the branch.
  isa::encode_to(isa::Instruction{isa::Opcode::kCmpImm, 0, 1}, image);
  isa::encode_to(isa::Instruction{isa::Opcode::kJz, 0, 1}, image);
  isa::encode_to(isa::Instruction{isa::Opcode::kAdd, 2, 3}, image);
  isa::encode_to(isa::Instruction{isa::Opcode::kHalt, 0, 0}, image);

  for (const GuardPoint& p : safe_guard_points(image)) {
    EXPECT_NE(p.boundary, 17U) << "flags are live across boundary 17";
  }
}

TEST_F(AttackFixture, BinaryAeReExtractsToGeaShape) {
  const auto& victim = malware_victim();
  const auto& target = select_target(data->train,
                                     dataset::Family::kBenign,
                                     dataset::TargetSize::kSmall);
  const auto combined = binary_gea(victim.binary, target.binary);
  const cfg::Cfg merged = cfg::extract(combined.image);
  // The shared entry is the guard block: one edge into the original,
  // one into the injected lobe — both statically reachable.
  EXPECT_EQ(merged.graph().out_degree(merged.entry()), 2U);
  EXPECT_GT(merged.node_count(), victim.cfg.node_count());
  EXPECT_GE(merged.node_count(),
            victim.cfg.node_count() + target.cfg.node_count() - 2);
}

TEST_F(AttackFixture, GeaAttackerTargetsRequestedFamily) {
  GeaAttackerOptions options;
  options.target_family = dataset::Family::kBenign;
  const GeaAttacker attacker(options);
  math::Rng rng(5);
  const auto result =
      attacker.generate(malware_victim(), data->train, rng);
  EXPECT_EQ(result.target_family, dataset::Family::kBenign);
  EXPECT_EQ(result.original_family, malware_victim().family);
  EXPECT_FALSE(result.binary.empty());
  EXPECT_EQ(result.queries, 0U);
  // The embedded lobe is the requested family's member, so the detail
  // names at least one corpus id.
  EXPECT_NE(result.detail.find("targets="), std::string::npos);
}

TEST_F(AttackFixture, FamilySelectionHonoursSizeBuckets) {
  const auto members =
      family_members(data->train, dataset::Family::kBenign);
  ASSERT_GE(members.size(), 2U);
  for (std::size_t i = 1; i < members.size(); ++i) {
    EXPECT_LE(members[i - 1]->cfg.node_count(),
              members[i]->cfg.node_count());
  }
  const auto& small = select_target(data->train, dataset::Family::kBenign,
                                    dataset::TargetSize::kSmall);
  const auto& large = select_target(data->train, dataset::Family::kBenign,
                                    dataset::TargetSize::kLarge);
  EXPECT_LE(small.cfg.node_count(), large.cfg.node_count());
  EXPECT_EQ(small.family, dataset::Family::kBenign);
  EXPECT_EQ(large.family, dataset::Family::kBenign);
}

TEST_F(AttackFixture, EmptyAndSingleFamilyCorporaAreTypedErrors) {
  GeaAttackerOptions options;
  options.target_family = dataset::Family::kBenign;
  const GeaAttacker attacker(options);
  math::Rng rng(5);

  const std::vector<dataset::Sample> empty;
  try {
    (void)attacker.generate(malware_victim(), empty, rng);
    FAIL() << "empty corpus must throw";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), core::ErrorCode::kInvalidArgument);
  }

  // A corpus with no member of the requested family is the same typed
  // error — the matrix runner counts it instead of aborting.
  std::vector<dataset::Sample> no_benign;
  for (const auto& s : data->train) {
    if (s.family != dataset::Family::kBenign) no_benign.push_back(s);
  }
  ASSERT_FALSE(no_benign.empty());
  try {
    (void)attacker.generate(malware_victim(), no_benign, rng);
    FAIL() << "missing target family must throw";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), core::ErrorCode::kInvalidArgument);
  }
}

TEST_F(AttackFixture, RegistryBuildsEveryAttackerAndValidates) {
  for (const auto name : attacker_names()) {
    const auto attacker =
        make_attacker(name, "target=benign", system);
    EXPECT_EQ(attacker->name(), name);
    EXPECT_NE(attacker->params().find("target=Benign"),
              std::string::npos);
  }
  EXPECT_THROW((void)make_attacker("nope", "", system), core::Error);
  EXPECT_THROW((void)make_attacker("gea", "target=martian", system),
               core::Error);
  EXPECT_THROW((void)make_attacker("gea", "bogus", system), core::Error);
  EXPECT_THROW((void)make_attacker("adaptive", "", nullptr), core::Error);
}

TEST_F(AttackFixture, GuidedAttackersSpendAndReportQueries) {
  GuidedOptions options;
  options.target_family = dataset::Family::kBenign;
  options.candidates = 3;
  const ScoreGuidedAttacker attacker(*system, options);
  math::Rng rng(11);
  const auto result =
      attacker.generate(malware_victim(), data->train, rng);
  EXPECT_GT(result.queries, 0U);
  EXPECT_FALSE(result.binary.empty());
  EXPECT_NE(result.detail.find("score="), std::string::npos);
}

TEST_F(AttackFixture, ObsCountersTickWhenEnabled) {
  obs::registry().reset();
  obs::set_enabled(true);
  GuidedOptions options;
  options.target_family = dataset::Family::kBenign;
  options.candidates = 2;
  const AdaptiveAttacker attacker(*system, options);
  math::Rng rng(13);
  const auto result =
      attacker.generate(malware_victim(), data->train, rng);
  const auto snap = obs::registry().snapshot();
  obs::set_enabled(false);
  obs::registry().reset();
  EXPECT_EQ(snap.counters.at("attack.generated"), 1U);
  EXPECT_EQ(snap.counters.at("attack.queries"), result.queries);
  EXPECT_EQ(snap.histograms.at("t/attack.generate").count, 1U);
}

// The PR's reason to exist: the detector-aware attacker must do no
// worse than the oblivious GEA baseline at its own game, and its chosen
// candidates must sit strictly closer to the reconstruction manifold.
TEST_F(AttackFixture, AdaptiveBeatsPlainGeaAgainstTheDetector) {
  GeaAttackerOptions gea_options;
  gea_options.target_family = dataset::Family::kBenign;
  gea_options.target_size = dataset::TargetSize::kLarge;
  const GeaAttacker gea(gea_options);

  GuidedOptions adaptive_options;
  adaptive_options.target_family = dataset::Family::kBenign;
  adaptive_options.candidates = 4;
  const AdaptiveAttacker adaptive(*system, adaptive_options);

  const math::Rng root(23);
  std::size_t gea_evaded = 0;
  std::size_t adaptive_evaded = 0;
  double gea_error = 0.0;
  double adaptive_error = 0.0;
  std::size_t victims = 0;
  for (std::size_t i = 0; i < data->test.size() && victims < 10; ++i) {
    const auto& victim = data->test[i];
    if (victim.family == dataset::Family::kBenign ||
        victim.binary.empty()) {
      continue;
    }
    ++victims;
    math::Rng g = root.child(4 * i);
    math::Rng a = root.child(4 * i + 1);
    const auto from_gea = gea.generate(victim, data->train, g);
    const auto from_adaptive = adaptive.generate(victim, data->train, a);
    math::Rng vg = root.child(4 * i + 2);
    math::Rng va = root.child(4 * i + 3);
    const auto verdict_gea = system->analyze(from_gea.cfg, vg);
    const auto verdict_adaptive =
        system->analyze(from_adaptive.cfg, va);
    gea_evaded += !verdict_gea.adversarial;
    adaptive_evaded += !verdict_adaptive.adversarial;
    gea_error += verdict_gea.reconstruction_error;
    adaptive_error += verdict_adaptive.reconstruction_error;
  }
  ASSERT_GT(victims, 0U);
  EXPECT_GE(adaptive_evaded, gea_evaded);
  // Strict improvement where it is deterministic for the fixed seeds:
  // the adaptive choices land strictly closer to the manifold.
  EXPECT_LT(adaptive_error, gea_error);
}

}  // namespace
}  // namespace soteria::attack
