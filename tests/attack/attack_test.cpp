#include <gtest/gtest.h>

#include "attack/binary_gea.h"
#include "attack/obfuscation.h"
#include "cfg/extractor.h"
#include "dataset/family_profiles.h"
#include "isa/codegen.h"
#include "isa/vm.h"
#include "soteria/error.h"

namespace soteria::attack {
namespace {

std::vector<std::uint8_t> sample_binary(dataset::Family family,
                                        std::uint64_t seed) {
  math::Rng rng(seed);
  return isa::generate_binary(dataset::profile_for(family), rng);
}

TEST(BinaryGea, CombinedImageStillExecutesOriginalBehaviour) {
  const auto original = sample_binary(dataset::Family::kMirai, 1);
  const auto target = sample_binary(dataset::Family::kBenign, 2);
  const auto combined = binary_gea(original, target);

  const auto original_run = isa::execute(original);
  const auto combined_run = isa::execute(combined.image);
  ASSERT_EQ(original_run.status, isa::VmStatus::kHalted);
  ASSERT_EQ(combined_run.status, isa::VmStatus::kHalted);
  // Guard adds exactly its own steps; the original side runs unchanged.
  EXPECT_EQ(combined_run.steps,
            original_run.steps + combined.guard_instructions);
  EXPECT_EQ(combined_run.syscalls, original_run.syscalls);
}

TEST(BinaryGea, ExtractedCfgHasSharedEntryShape) {
  const auto original = sample_binary(dataset::Family::kGafgyt, 3);
  const auto target = sample_binary(dataset::Family::kBenign, 4);
  const auto combined = binary_gea(original, target);

  const auto original_cfg = cfg::extract(original);
  const auto target_cfg = cfg::extract(target);
  const auto combined_cfg = cfg::extract(combined.image);

  // Both lobes are statically reachable: the combined CFG must be at
  // least as large as the two parts combined (the guard may merge into
  // a lobe block boundary, so allow a small delta).
  EXPECT_GE(combined_cfg.node_count() + 2,
            original_cfg.node_count() + target_cfg.node_count());
  // The entry block ends in the guard's conditional: two successors.
  EXPECT_EQ(combined_cfg.graph().out_degree(combined_cfg.entry()), 2U);
}

TEST(BinaryGea, Validation) {
  const auto good = sample_binary(dataset::Family::kBenign, 5);
  try {
    (void)binary_gea({}, good);
    FAIL() << "expected core::Error";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), core::ErrorCode::kInvalidArgument);
  }
  EXPECT_THROW((void)binary_gea(good, {}), core::Error);
  const std::vector<std::uint8_t> ragged{1, 2, 3};
  EXPECT_THROW((void)binary_gea(ragged, good), core::Error);
}

TEST(AppendAttack, ChangesBytesNotCfg) {
  const auto original = sample_binary(dataset::Family::kTsunami, 6);
  math::Rng rng(7);
  const auto padded = append_attack(original, 256, rng);
  EXPECT_EQ(padded.size(), original.size() + 256);

  const auto before = cfg::extract(original);
  const auto after = cfg::extract(padded);
  EXPECT_EQ(after.node_count(), before.node_count());
  EXPECT_EQ(after.edge_count(), before.edge_count());
}

TEST(AppendAttack, PaddedImageStillExecutes) {
  const auto original = sample_binary(dataset::Family::kMirai, 8);
  math::Rng rng(9);
  const auto padded = append_attack(original, 512, rng);
  const auto result = isa::execute(padded);
  EXPECT_EQ(result.status, isa::VmStatus::kHalted);
  EXPECT_EQ(result.steps, isa::execute(original).steps);
}

TEST(AppendAttack, RoundsUpToInstructionBoundary) {
  const auto original = sample_binary(dataset::Family::kBenign, 10);
  math::Rng rng(11);
  const auto padded = append_attack(original, 5, rng);
  EXPECT_EQ(padded.size() % isa::kInstructionSize, 0U);
  EXPECT_EQ(padded.size(), original.size() + 8);  // 5 -> 2 instructions
}

TEST(OpaquePredicates, AddBlocksWithoutChangingBehaviour) {
  const auto original = sample_binary(dataset::Family::kGafgyt, 12);
  math::Rng rng(13);
  const auto obfuscated = opaque_predicates(original, 4, rng);

  const auto before = cfg::extract(original);
  const auto after = cfg::extract(obfuscated);
  EXPECT_GT(after.node_count(), before.node_count());

  const auto original_run = isa::execute(original);
  const auto obfuscated_run = isa::execute(obfuscated);
  ASSERT_EQ(obfuscated_run.status, isa::VmStatus::kHalted);
  EXPECT_EQ(obfuscated_run.syscalls, original_run.syscalls);
}

TEST(OpaquePredicates, ZeroCountIsJustATrampoline) {
  const auto original = sample_binary(dataset::Family::kBenign, 14);
  math::Rng rng(15);
  const auto obfuscated = opaque_predicates(original, 0, rng);
  EXPECT_EQ(obfuscated.size(),
            original.size() + isa::kInstructionSize);  // the jmp only
  EXPECT_EQ(isa::execute(obfuscated).status, isa::VmStatus::kHalted);
}

TEST(IndirectBranches, RemoveEdgesFromTheCfg) {
  const auto original = sample_binary(dataset::Family::kMirai, 16);
  math::Rng rng(17);
  const auto obfuscated = indirect_branches(original, 1.0, rng);
  const auto before = cfg::extract(original);
  const auto after = cfg::extract(obfuscated);
  // Every direct jmp removed -> strictly fewer edges unless the binary
  // had no jumps at all (not the case for generated programs).
  EXPECT_LT(after.edge_count(), before.edge_count());
}

TEST(IndirectBranches, ZeroFractionIsIdentity) {
  const auto original = sample_binary(dataset::Family::kBenign, 18);
  math::Rng rng(19);
  EXPECT_EQ(indirect_branches(original, 0.0, rng), original);
  EXPECT_THROW((void)indirect_branches(original, 1.5, rng), core::Error);
}

}  // namespace
}  // namespace soteria::attack
