#include "io/binary_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace soteria::io {
namespace {

TEST(BinaryIo, ScalarRoundTrips) {
  std::stringstream stream;
  write_scalar<std::uint64_t>(stream, 0xDEADBEEFCAFEULL);
  write_scalar<double>(stream, 3.25);
  write_scalar<std::int16_t>(stream, -7);
  EXPECT_EQ(read_scalar<std::uint64_t>(stream), 0xDEADBEEFCAFEULL);
  EXPECT_DOUBLE_EQ(read_scalar<double>(stream), 3.25);
  EXPECT_EQ(read_scalar<std::int16_t>(stream), -7);
}

TEST(BinaryIo, ScalarTruncationThrows) {
  std::stringstream stream;
  write_scalar<std::uint16_t>(stream, 1);
  EXPECT_THROW((void)read_scalar<std::uint64_t>(stream),
               std::runtime_error);
}

TEST(BinaryIo, VectorRoundTrips) {
  std::stringstream stream;
  const std::vector<float> values{1.5F, -2.5F, 3.0F};
  write_vector(stream, values);
  EXPECT_EQ(read_vector<float>(stream), values);
}

TEST(BinaryIo, EmptyVectorRoundTrips) {
  std::stringstream stream;
  write_vector(stream, std::vector<std::uint32_t>{});
  EXPECT_TRUE(read_vector<std::uint32_t>(stream).empty());
}

TEST(BinaryIo, VectorTruncationThrows) {
  std::stringstream stream;
  write_vector(stream, std::vector<double>{1.0, 2.0, 3.0});
  std::string payload = stream.str();
  payload.resize(payload.size() - 4);
  std::stringstream truncated(payload);
  EXPECT_THROW((void)read_vector<double>(truncated), std::runtime_error);
}

TEST(BinaryIo, ImplausibleVectorSizeRejected) {
  std::stringstream stream;
  write_scalar<std::uint64_t>(stream, kMaxContainerElements + 1);
  EXPECT_THROW((void)read_vector<float>(stream), std::runtime_error);
}

TEST(BinaryIo, StringRoundTrips) {
  std::stringstream stream;
  write_string(stream, "hello soteria");
  write_string(stream, "");
  EXPECT_EQ(read_string(stream), "hello soteria");
  EXPECT_EQ(read_string(stream), "");
}

TEST(BinaryIo, StringWithEmbeddedNulls) {
  std::stringstream stream;
  const std::string payload("a\0b", 3);
  write_string(stream, payload);
  EXPECT_EQ(read_string(stream), payload);
}

TEST(BinaryIo, StringTruncationThrows) {
  std::stringstream stream;
  write_scalar<std::uint64_t>(stream, 100);
  stream.write("short", 5);
  EXPECT_THROW((void)read_string(stream), std::runtime_error);
}

}  // namespace
}  // namespace soteria::io
