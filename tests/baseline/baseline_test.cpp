#include <gtest/gtest.h>

#include "baseline/graph_features.h"
#include "baseline/image_classifier.h"
#include "dataset/generator.h"

namespace soteria::baseline {
namespace {

dataset::Dataset tiny_dataset() {
  dataset::DatasetConfig config;
  config.scale = 0.006;
  math::Rng rng(31);
  return dataset::generate_dataset(config, rng);
}

TEST(GraphBaseline, RawFeaturesHaveFixedLayout) {
  math::Rng rng(1);
  const auto sample =
      dataset::generate_sample(dataset::Family::kMirai, 0, rng);
  const auto features = GraphFeatureBaseline::raw_features(sample.cfg);
  EXPECT_EQ(features.size(), graph::kGraphFeatureCount);
  EXPECT_FLOAT_EQ(features[0],
                  static_cast<float>(sample.cfg.node_count()));
}

TEST(GraphBaseline, TrainsAndPredictsValidClasses) {
  const auto data = tiny_dataset();
  GraphBaselineConfig config;
  config.training = nn::make_train_config(20, 32);
  auto baseline = GraphFeatureBaseline::train(data.train, config);
  EXPECT_GT(baseline.train_report().epoch_losses.size(), 0U);
  std::size_t correct = 0;
  for (const auto& sample : data.test) {
    const auto predicted = baseline.predict(sample.cfg);
    EXPECT_LT(dataset::family_index(predicted), dataset::kFamilyCount);
    correct += predicted == sample.family;
  }
  // Graph statistics separate these families far better than chance.
  EXPECT_GT(correct * 2, data.test.size());
}

TEST(GraphBaseline, StandardizationUsesTrainStatistics) {
  const auto data = tiny_dataset();
  GraphBaselineConfig config;
  config.training = nn::make_train_config(2, 32);
  auto baseline = GraphFeatureBaseline::train(data.train, config);
  const auto standardized = baseline.features_for(data.test[0].cfg);
  EXPECT_EQ(standardized.size(), graph::kGraphFeatureCount);
  // Standardized features should be O(1), not raw node counts.
  for (float v : standardized) EXPECT_LT(std::abs(v), 50.0F);
}

TEST(GraphBaseline, UntrainedThrows) {
  GraphFeatureBaseline baseline;
  math::Rng rng(2);
  const auto sample =
      dataset::generate_sample(dataset::Family::kBenign, 0, rng);
  EXPECT_THROW((void)baseline.features_for(sample.cfg), std::logic_error);
}

TEST(GraphBaseline, EmptyTrainingThrows) {
  EXPECT_THROW(
      (void)GraphFeatureBaseline::train({}, GraphBaselineConfig{}),
      std::invalid_argument);
}

TEST(ImageBaseline, ToImageResamplesAndNormalizes) {
  const std::vector<std::uint8_t> binary{0, 255, 128, 64};
  const auto image = ImageBaseline::to_image(binary, 2);
  ASSERT_EQ(image.size(), 4U);
  EXPECT_FLOAT_EQ(image[0], 0.0F);
  EXPECT_FLOAT_EQ(image[1], 1.0F);
  for (float p : image) {
    EXPECT_GE(p, 0.0F);
    EXPECT_LE(p, 1.0F);
  }
}

TEST(ImageBaseline, ToImageHandlesAnyBinarySize) {
  std::vector<std::uint8_t> tiny{42};
  const auto small = ImageBaseline::to_image(tiny, 8);
  EXPECT_EQ(small.size(), 64U);
  for (float p : small) EXPECT_FLOAT_EQ(p, 42.0F / 255.0F);

  std::vector<std::uint8_t> large(10000);
  for (std::size_t i = 0; i < large.size(); ++i) {
    large[i] = static_cast<std::uint8_t>(i);
  }
  EXPECT_EQ(ImageBaseline::to_image(large, 16).size(), 256U);
}

TEST(ImageBaseline, ToImageValidation) {
  EXPECT_THROW((void)ImageBaseline::to_image({}, 8),
               std::invalid_argument);
  const std::vector<std::uint8_t> bytes{1};
  EXPECT_THROW((void)ImageBaseline::to_image(bytes, 0),
               std::invalid_argument);
}

TEST(ImageBaseline, AppendedBytesChangeTheImage) {
  // The weakness the paper contrasts against CFG features: appended
  // (unreachable) bytes change the image representation.
  math::Rng rng(3);
  auto sample = dataset::generate_sample(dataset::Family::kGafgyt, 0, rng);
  const auto before = ImageBaseline::to_image(sample.binary, 16);
  sample.binary.insert(sample.binary.end(), 512, 0xAB);
  const auto after = ImageBaseline::to_image(sample.binary, 16);
  EXPECT_NE(before, after);
}

TEST(ImageBaseline, TrainsAndPredicts) {
  const auto data = tiny_dataset();
  ImageBaselineConfig config;
  config.image_side = 16;
  config.training = nn::make_train_config(15, 32);
  auto baseline = ImageBaseline::train(data.train, config);
  EXPECT_EQ(baseline.image_side(), 16U);
  std::size_t valid = 0;
  for (const auto& sample : data.test) {
    const auto predicted = baseline.predict(sample.binary);
    valid += dataset::family_index(predicted) < dataset::kFamilyCount;
  }
  EXPECT_EQ(valid, data.test.size());
}

TEST(ImageBaseline, UntrainedThrows) {
  ImageBaseline baseline;
  const std::vector<std::uint8_t> bytes{1, 2, 3, 4};
  EXPECT_THROW((void)baseline.predict(bytes), std::logic_error);
}

TEST(ImageBaseline, EmptyTrainingThrows) {
  EXPECT_THROW((void)ImageBaseline::train({}, ImageBaselineConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace soteria::baseline
