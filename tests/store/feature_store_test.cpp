// FeatureStore contract: the versioned on-disk entry format (golden
// bytes, endianness, checksum), corruption handling (truncated entries,
// flipped checksum bytes, tampered key fields each quarantine + count +
// miss — never throw), open-time recovery (temp-file cleanup, corrupt
// quarantine, LRU rebuild), capacity-bounded eviction, persistence
// across reopen, and thread safety of concurrent get/put/compact.
// Carries the `store` ctest label; the sanitize builds run it under
// TSan.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "soteria/error.h"
#include "store/feature_store.h"

namespace soteria::store {
namespace {

namespace fs = std::filesystem;

features::SampleFeatures make_features(float base) {
  features::SampleFeatures features;
  features.dbl = {{base, base + 1.0F}, {base + 2.0F, base + 3.0F}};
  features.lbl = {{base + 4.0F}, {base + 5.0F}};
  features.pooled_dbl = {base + 6.0F, base + 7.0F};
  features.pooled_lbl = {base + 8.0F};
  return features;
}

void expect_features_equal(const features::SampleFeatures& actual,
                           const features::SampleFeatures& expected) {
  EXPECT_EQ(actual.dbl, expected.dbl);
  EXPECT_EQ(actual.lbl, expected.lbl);
  EXPECT_EQ(actual.pooled_dbl, expected.pooled_dbl);
  EXPECT_EQ(actual.pooled_lbl, expected.pooled_lbl);
}

/// Fresh scratch directory per test, removed on teardown.
struct FeatureStoreTest : public ::testing::Test {
  void SetUp() override {
    dir_ = fs::current_path() /
           ("soteria_store_test_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    obs::registry().reset();
    obs::set_enabled(false);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::registry().reset();
    fs::remove_all(dir_);
  }

  [[nodiscard]] StoreConfig config(std::size_t capacity = 0) const {
    StoreConfig store_config;
    store_config.directory = dir_.string();
    store_config.capacity = capacity;
    return store_config;
  }

  /// The single entry file below `dir_` (fails the test unless exactly
  /// one exists outside quarantine/).
  [[nodiscard]] fs::path only_entry_file() const {
    std::vector<fs::path> files;
    for (const auto& item : fs::recursive_directory_iterator(dir_)) {
      if (item.is_regular_file() &&
          item.path().parent_path().filename() != "quarantine") {
        files.push_back(item.path());
      }
    }
    EXPECT_EQ(files.size(), 1u);
    return files.empty() ? fs::path{} : files.front();
  }

  [[nodiscard]] std::size_t quarantine_count() const {
    const fs::path quarantine = dir_ / "quarantine";
    if (!fs::exists(quarantine)) return 0;
    std::size_t count = 0;
    for (const auto& item : fs::directory_iterator(quarantine)) {
      count += item.is_regular_file();
    }
    return count;
  }

  fs::path dir_;
};

// --- On-disk format -------------------------------------------------

// Independent re-implementation of the writer (little-endian appends +
// FNV-1a), so a layout change in the store shows up as a byte diff.
void append_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void append_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void append_f32(std::string& out, float value) {
  std::uint32_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  append_u32(out, bits);
}

std::uint64_t reference_fnv1a(const std::string& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x00000100000001b3ULL;
  }
  return hash;
}

TEST_F(FeatureStoreTest, EntryFormatMatchesGoldenBytes) {
  features::SampleFeatures features;
  features.dbl = {{1.0F, 2.0F}};
  features.lbl = {{3.0F}};
  features.pooled_dbl = {0.5F};
  features.pooled_lbl = {};
  const FeatureKey key{0x0123456789abcdefULL, 0xfedcba9876543210ULL, 42};

  std::string payload;
  append_u32(payload, 1);  // dbl walk count
  append_u32(payload, 2);  // dim
  append_f32(payload, 1.0F);
  append_f32(payload, 2.0F);
  append_u32(payload, 1);  // lbl walk count
  append_u32(payload, 1);  // dim
  append_f32(payload, 3.0F);
  append_u32(payload, 1);  // pooled_dbl dim
  append_f32(payload, 0.5F);
  append_u32(payload, 0);  // pooled_lbl dim

  std::string expected;
  expected += "SFS1";  // magic, a little-endian u32 spelling the tag
  append_u32(expected, kEntryFormatVersion);
  append_u64(expected, key.content_hash);
  append_u64(expected, key.fingerprint);
  append_u64(expected, key.walk_seed);
  append_u64(expected, payload.size());
  expected += payload;
  append_u64(expected, reference_fnv1a(payload));

  const std::string actual = FeatureStore::encode_entry(key, features);
  ASSERT_EQ(actual.size(), expected.size());
  EXPECT_TRUE(actual == expected) << "on-disk entry layout changed — bump "
                                     "kEntryFormatVersion";

  const auto decoded = FeatureStore::decode_entry(actual, &key);
  ASSERT_TRUE(decoded.has_value());
  expect_features_equal(*decoded, features);
}

TEST_F(FeatureStoreTest, DecodeRejectsEveryTruncation) {
  const FeatureKey key{1, 2, 3};
  const std::string bytes =
      FeatureStore::encode_entry(key, make_features(1.0F));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(
        FeatureStore::decode_entry(bytes.substr(0, len), &key).has_value())
        << "prefix of " << len << " bytes decoded";
  }
}

TEST_F(FeatureStoreTest, DecodeRejectsAnyFlippedByte) {
  const FeatureKey key{1, 2, 3};
  const std::string bytes =
      FeatureStore::encode_entry(key, make_features(1.0F));
  // Byte flips anywhere must be caught: header fields (magic, version,
  // key, size) by validation, payload bytes and the trailing checksum
  // by the checksum comparison.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string tampered = bytes;
    tampered[i] = static_cast<char>(tampered[i] ^ 0x20);
    EXPECT_FALSE(FeatureStore::decode_entry(tampered, &key).has_value())
        << "flip at byte " << i << " decoded";
  }
}

TEST_F(FeatureStoreTest, DecodeRejectsKeyMismatch) {
  const FeatureKey key{1, 2, 3};
  const std::string bytes =
      FeatureStore::encode_entry(key, make_features(1.0F));
  EXPECT_TRUE(FeatureStore::decode_entry(bytes, nullptr).has_value());
  const FeatureKey wrong_fingerprint{1, 99, 3};
  EXPECT_FALSE(
      FeatureStore::decode_entry(bytes, &wrong_fingerprint).has_value());
  const FeatureKey wrong_seed{1, 2, 99};
  EXPECT_FALSE(FeatureStore::decode_entry(bytes, &wrong_seed).has_value());
}

// --- Basic store behavior -------------------------------------------

TEST_F(FeatureStoreTest, RejectsInvalidConfig) {
  try {
    FeatureStore bad{StoreConfig{}};
    FAIL() << "empty directory accepted";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), core::ErrorCode::kInvalidArgument);
  }
  try {
    StoreConfig zero_shards = config();
    zero_shards.shard_count = 0;
    FeatureStore bad{zero_shards};
    FAIL() << "shard_count 0 accepted";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.code(), core::ErrorCode::kInvalidArgument);
  }
}

TEST_F(FeatureStoreTest, PutGetRoundTripsAndCounts) {
  FeatureStore store(config());
  const FeatureKey key{7, 8, 9};
  const auto features = make_features(2.0F);

  EXPECT_FALSE(store.get(key).has_value());
  store.put(key, features);
  const auto hit = store.get(key);
  ASSERT_TRUE(hit.has_value());
  expect_features_equal(*hit, features);

  const auto stats = store.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_EQ(stats.corrupt_entries, 0u);
}

TEST_F(FeatureStoreTest, PersistsAcrossReopen) {
  const FeatureKey key{10, 11, 12};
  const auto features = make_features(3.0F);
  { FeatureStore(config()).put(key, features); }

  FeatureStore reopened(config());
  EXPECT_EQ(reopened.stats().entries, 1u);
  const auto hit = reopened.get(key);
  ASSERT_TRUE(hit.has_value());
  expect_features_equal(*hit, features);
}

TEST_F(FeatureStoreTest, DifferentFingerprintIsCleanMissNotCorruption) {
  FeatureStore store(config());
  store.put(FeatureKey{1, 2, 3}, make_features(1.0F));

  // A retrained pipeline produces a different fingerprint => different
  // key => plain miss; nothing about the resident entry is corrupt.
  EXPECT_FALSE(store.get(FeatureKey{1, 999, 3}).has_value());
  const auto stats = store.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.corrupt_entries, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(quarantine_count(), 0u);
}

// --- Corruption handling --------------------------------------------

TEST_F(FeatureStoreTest, TruncatedEntryQuarantinesCountsAndMisses) {
  obs::set_enabled(true);
  FeatureStore store(config());
  const FeatureKey key{21, 22, 23};
  store.put(key, make_features(4.0F));

  const fs::path entry = only_entry_file();
  fs::resize_file(entry, fs::file_size(entry) / 2);

  EXPECT_FALSE(store.get(key).has_value());  // never throws
  const auto stats = store.stats();
  EXPECT_EQ(stats.corrupt_entries, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(quarantine_count(), 1u);
  EXPECT_FALSE(fs::exists(entry));

  const auto snapshot = obs::registry().snapshot();
  EXPECT_EQ(snapshot.counters.at("soteria.store.corrupt_entries"), 1u);
  EXPECT_EQ(snapshot.counters.at("soteria.store.misses"), 1u);

  // The slot is reusable immediately.
  store.put(key, make_features(4.0F));
  EXPECT_TRUE(store.get(key).has_value());
}

TEST_F(FeatureStoreTest, FlippedChecksumByteQuarantinesCountsAndMisses) {
  FeatureStore store(config());
  const FeatureKey key{31, 32, 33};
  store.put(key, make_features(5.0F));

  const fs::path entry = only_entry_file();
  std::string bytes;
  {
    std::ifstream in(entry, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(bytes.empty());
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);  // checksum byte
  {
    std::ofstream out(entry, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  EXPECT_FALSE(store.get(key).has_value());
  EXPECT_EQ(store.stats().corrupt_entries, 1u);
  EXPECT_EQ(quarantine_count(), 1u);
}

TEST_F(FeatureStoreTest, TamperedFingerprintFieldQuarantinesCountsAndMisses) {
  FeatureStore store(config());
  const FeatureKey key{41, 42, 43};
  store.put(key, make_features(6.0F));

  // Bytes 16..23 are the header's fingerprint field; a flip there makes
  // the stored key disagree with the requested one — corruption, not a
  // clean miss.
  const fs::path entry = only_entry_file();
  std::fstream file(entry,
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(16);
  file.put('\x7f');
  file.close();

  EXPECT_FALSE(store.get(key).has_value());
  EXPECT_EQ(store.stats().corrupt_entries, 1u);
  EXPECT_EQ(quarantine_count(), 1u);
}

// --- Open-time recovery ---------------------------------------------

TEST_F(FeatureStoreTest, OpenRecoversFromCrashArtifacts) {
  const FeatureKey keep_a{51, 52, 53};
  const FeatureKey keep_b{54, 55, 56};
  const FeatureKey broken{57, 58, 59};
  fs::path broken_path;
  {
    FeatureStore store(config());
    store.put(keep_a, make_features(7.0F));
    store.put(keep_b, make_features(8.0F));
    store.put(broken, make_features(9.0F));
    for (const auto& item : fs::recursive_directory_iterator(dir_)) {
      if (item.is_regular_file() && fs::file_size(item.path()) > 0 &&
          FeatureStore::decode_entry(
              [&] {
                std::ifstream in(item.path(), std::ios::binary);
                return std::string(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
              }(),
              &broken)
              .has_value()) {
        broken_path = item.path();
      }
    }
  }
  ASSERT_FALSE(broken_path.empty());

  // Simulate a crash: one entry truncated mid-header, one unpublished
  // temp file left behind.
  fs::resize_file(broken_path, 10);
  const fs::path stale_temp = broken_path.parent_path() / ".tmp-999";
  std::ofstream(stale_temp, std::ios::binary) << "partial write";

  FeatureStore reopened(config());
  EXPECT_FALSE(fs::exists(stale_temp));
  EXPECT_EQ(quarantine_count(), 1u);
  const auto stats = reopened.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.corrupt_entries, 1u);

  EXPECT_TRUE(reopened.get(keep_a).has_value());
  EXPECT_TRUE(reopened.get(keep_b).has_value());
  EXPECT_FALSE(reopened.get(broken).has_value());
}

// --- Eviction / compaction / maintenance ----------------------------

TEST_F(FeatureStoreTest, CapacityBoundEvictsLeastRecentlyUsed) {
  FeatureStore store(config(2));
  const FeatureKey a{61, 0, 0};
  const FeatureKey b{62, 0, 0};
  const FeatureKey c{63, 0, 0};
  store.put(a, make_features(1.0F));
  store.put(b, make_features(2.0F));
  EXPECT_TRUE(store.get(a).has_value());  // a is now MRU, b is LRU
  store.put(c, make_features(3.0F));      // evicts b

  EXPECT_EQ(store.stats().entries, 2u);
  EXPECT_EQ(store.stats().evictions, 1u);
  EXPECT_FALSE(store.get(b).has_value());
  EXPECT_TRUE(store.get(a).has_value());
  EXPECT_TRUE(store.get(c).has_value());
}

TEST_F(FeatureStoreTest, ReopenAppliesCapacityBound) {
  {
    FeatureStore store(config());
    for (std::uint64_t i = 0; i < 5; ++i) {
      store.put(FeatureKey{i, 0, 0}, make_features(1.0F));
    }
    EXPECT_EQ(store.compact(), 0u);  // capacity 0 = unbounded
  }
  FeatureStore bounded(config(2));
  EXPECT_EQ(bounded.stats().entries, 2u);
  EXPECT_EQ(bounded.stats().evictions, 3u);
}

TEST_F(FeatureStoreTest, VerifySweepsTamperedEntries) {
  FeatureStore store(config());
  store.put(FeatureKey{71, 0, 0}, make_features(1.0F));
  store.put(FeatureKey{72, 0, 0}, make_features(2.0F));
  store.put(FeatureKey{73, 0, 0}, make_features(3.0F));

  // Flip one payload byte in one entry; verify() must find exactly it.
  fs::path victim;
  for (const auto& item : fs::recursive_directory_iterator(dir_)) {
    if (item.is_regular_file()) victim = item.path();
  }
  ASSERT_FALSE(victim.empty());
  std::fstream file(victim,
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(45);  // inside the payload
  file.put('\x55');
  file.close();

  const auto report = store.verify();
  EXPECT_EQ(report.checked, 3u);
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_EQ(store.stats().entries, 2u);
  EXPECT_EQ(store.stats().corrupt_entries, 1u);
  EXPECT_EQ(quarantine_count(), 1u);

  const auto clean = store.verify();
  EXPECT_EQ(clean.checked, 2u);
  EXPECT_EQ(clean.quarantined, 0u);
}

TEST_F(FeatureStoreTest, ClearRemovesEntriesButKeepsQuarantine) {
  FeatureStore store(config());
  const FeatureKey key{81, 0, 0};
  store.put(key, make_features(1.0F));
  store.put(FeatureKey{82, 0, 0}, make_features(2.0F));

  const fs::path entry = dir_ / "quarantine" / "seeded";
  fs::create_directories(entry.parent_path());
  std::ofstream(entry, std::ios::binary) << "kept";

  store.clear();
  EXPECT_EQ(store.stats().entries, 0u);
  EXPECT_FALSE(store.get(key).has_value());
  EXPECT_TRUE(fs::exists(entry));
}

// --- Concurrency ----------------------------------------------------

TEST_F(FeatureStoreTest, ConcurrentGetPutCompactIsSafe) {
  FeatureStore store(config(16));
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 120;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store, t] {
      for (int op = 0; op < kOpsPerThread; ++op) {
        const auto id = static_cast<std::uint64_t>(op % 24);
        const FeatureKey key{id, 1, 2};
        switch ((op + t) % 3) {
          case 0:
            store.put(key, make_features(static_cast<float>(id)));
            break;
          case 1: {
            // A hit must carry the exact vectors some put stored for
            // this key (every writer of key `id` writes the same data).
            const auto hit = store.get(key);
            if (hit.has_value()) {
              expect_features_equal(*hit,
                                    make_features(static_cast<float>(id)));
            }
            break;
          }
          default:
            (void)store.compact();
            break;
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  const auto stats = store.stats();
  EXPECT_LE(stats.entries, 16u);
  EXPECT_EQ(stats.corrupt_entries, 0u);
  EXPECT_EQ(stats.write_failures, 0u);
  EXPECT_EQ(store.verify().quarantined, 0u);
}

}  // namespace
}  // namespace soteria::store
