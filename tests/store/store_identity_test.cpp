// End-to-end feature-store determinism: verdicts must be bit-identical
// with the store off, cold (populating), and warm (serving hits) — at
// any thread count, through analyze_batch and the async
// serve::AnalysisService, and across a hot model swap (whose new
// pipeline fingerprint must miss instead of reading the old model's
// vectors). Also exercises the acceptance path: a store directory with
// injected corrupt entries opens, quarantines, and serves misses
// without an error surfacing to analysis. Carries the `store` ctest
// label; the sanitize builds run it under TSan.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "dataset/generator.h"
#include "soteria/presets.h"
#include "soteria/system.h"
#include "store/feature_store.h"

#ifdef SOTERIA_HAVE_SERVE
#include <future>
#include <utility>

#include "serve/service.h"
#endif

namespace soteria::store {
namespace {

namespace fs = std::filesystem;

void expect_verdicts_equal(const std::vector<core::Verdict>& actual,
                           const std::vector<core::Verdict>& expected,
                           const char* what) {
  ASSERT_EQ(actual.size(), expected.size()) << what;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].adversarial, expected[i].adversarial)
        << what << ": sample " << i;
    EXPECT_EQ(actual[i].reconstruction_error,
              expected[i].reconstruction_error)
        << what << ": sample " << i;
    EXPECT_EQ(actual[i].predicted, expected[i].predicted)
        << what << ": sample " << i;
  }
}

// Training dominates suite wall-clock: two tiny systems (different
// seeds => different vocabularies => different fingerprints) are
// trained once and shared read-only by every test.
struct StoreIdentityFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    dataset::DatasetConfig data_config;
    data_config.scale = 0.008;
    math::Rng rng(29);
    data = new dataset::Dataset(dataset::generate_dataset(data_config, rng));

    core::SoteriaConfig config = core::tiny_config();
    config.seed = 29;
    model_a = new std::shared_ptr<const core::SoteriaSystem>(
        std::make_shared<const core::SoteriaSystem>(
            core::SoteriaSystem::train(data->train, config)));
    config.seed = 31;
    model_b = new std::shared_ptr<const core::SoteriaSystem>(
        std::make_shared<const core::SoteriaSystem>(
            core::SoteriaSystem::train(data->train, config)));
  }
  static void TearDownTestSuite() {
    delete model_b;
    delete model_a;
    delete data;
    model_b = nullptr;
    model_a = nullptr;
    data = nullptr;
  }

  void SetUp() override {
    dir_ = fs::current_path() /
           ("soteria_store_identity_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::shared_ptr<FeatureStore> open_store() const {
    StoreConfig config;
    config.directory = dir_.string();
    return std::make_shared<FeatureStore>(config);
  }

  [[nodiscard]] static std::vector<cfg::Cfg> test_cfgs(std::size_t n) {
    std::vector<cfg::Cfg> cfgs;
    for (std::size_t i = 0; i < std::min(n, data->test.size()); ++i) {
      cfgs.push_back(data->test[i].cfg);
    }
    return cfgs;
  }

  [[nodiscard]] static const core::SoteriaSystem& a() { return **model_a; }
  [[nodiscard]] static const core::SoteriaSystem& b() { return **model_b; }

  fs::path dir_;
  static dataset::Dataset* data;
  static std::shared_ptr<const core::SoteriaSystem>* model_a;
  static std::shared_ptr<const core::SoteriaSystem>* model_b;
};

dataset::Dataset* StoreIdentityFixture::data = nullptr;
std::shared_ptr<const core::SoteriaSystem>* StoreIdentityFixture::model_a =
    nullptr;
std::shared_ptr<const core::SoteriaSystem>* StoreIdentityFixture::model_b =
    nullptr;

TEST_F(StoreIdentityFixture, FingerprintIsStableAndTrainingSensitive) {
  EXPECT_NE(a().pipeline().fingerprint().value, 0u);
  EXPECT_EQ(a().pipeline().fingerprint(),
            a().pipeline().fingerprint());
  // Different training seed => different vocabularies => different
  // fingerprint (this is what keys model swaps to clean misses).
  EXPECT_NE(a().pipeline().fingerprint(),
            b().pipeline().fingerprint());

  // A save/load round trip preserves the fingerprint: a reloaded model
  // keeps hitting the entries it wrote.
  std::stringstream stream(std::ios::binary | std::ios::in | std::ios::out);
  a().save(stream);
  const auto reloaded = core::SoteriaSystem::load(stream);
  EXPECT_EQ(reloaded.pipeline().fingerprint(),
            a().pipeline().fingerprint());
}

TEST_F(StoreIdentityFixture, BatchVerdictsBitIdenticalColdWarmAndOff) {
  const auto cfgs = test_cfgs(12);
  const math::Rng rng(417);
  const auto baseline = a().analyze_batch(cfgs, rng);

  core::AnalyzeOptions with_store;
  with_store.feature_store = open_store();

  // Cold: every sample misses and is written.
  const auto cold = a().analyze_batch(cfgs, rng, with_store);
  expect_verdicts_equal(cold, baseline, "cold store vs no store");
  EXPECT_EQ(with_store.feature_store->stats().hits, 0u);
  EXPECT_EQ(with_store.feature_store->stats().writes, cfgs.size());

  // Warm, across several thread counts: every sample hits, and the
  // verdicts stay bit-identical to the storeless baseline.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    core::AnalyzeOptions options = with_store;
    options.num_threads = threads;
    const auto before = with_store.feature_store->stats().hits;
    const auto warm = a().analyze_batch(cfgs, rng, options);
    expect_verdicts_equal(warm, baseline, "warm store vs no store");
    EXPECT_EQ(with_store.feature_store->stats().hits,
              before + cfgs.size());
  }
}

TEST_F(StoreIdentityFixture, WarmVerdictsSurviveProcessRestart) {
  const auto cfgs = test_cfgs(8);
  const math::Rng rng(99);
  const auto baseline = a().analyze_batch(cfgs, rng);

  {
    core::AnalyzeOptions options;
    options.feature_store = open_store();
    (void)a().analyze_batch(cfgs, rng, options);
  }

  // A new store instance over the same directory (a "restart") serves
  // the persisted entries.
  core::AnalyzeOptions options;
  options.feature_store = open_store();
  const auto warm = a().analyze_batch(cfgs, rng, options);
  expect_verdicts_equal(warm, baseline, "restarted store vs no store");
  EXPECT_EQ(options.feature_store->stats().hits, cfgs.size());
  EXPECT_EQ(options.feature_store->stats().misses, 0u);
}

TEST_F(StoreIdentityFixture, SingleAnalyzeMatchesBatchAndUsesStore) {
  const auto cfgs = test_cfgs(4);
  const math::Rng rng(7);
  const auto batch = a().analyze_batch(cfgs, rng);

  core::AnalyzeOptions options;
  options.feature_store = open_store();
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const auto cold = a().analyze(cfgs[i], rng.child(i), options);
    EXPECT_EQ(cold.reconstruction_error, batch[i].reconstruction_error);
    const auto warm = a().analyze(cfgs[i], rng.child(i), options);
    EXPECT_EQ(warm.reconstruction_error, batch[i].reconstruction_error);
    EXPECT_EQ(warm.predicted, batch[i].predicted);
  }
  EXPECT_EQ(options.feature_store->stats().hits, cfgs.size());
}

TEST_F(StoreIdentityFixture, RetrainedModelMissesInsteadOfReadingStale) {
  const auto cfgs = test_cfgs(6);
  const math::Rng rng(55);

  core::AnalyzeOptions options;
  options.feature_store = open_store();
  (void)a().analyze_batch(cfgs, rng, options);  // warm with model A

  // Model B (different fingerprint) must never see A's vectors: all
  // misses, verdicts identical to B without any store.
  const auto baseline_b = b().analyze_batch(cfgs, rng);
  const auto with_store_b = b().analyze_batch(cfgs, rng, options);
  expect_verdicts_equal(with_store_b, baseline_b,
                        "model B on store warmed by model A");
  EXPECT_EQ(options.feature_store->stats().hits, 0u);
  EXPECT_EQ(options.feature_store->stats().corrupt_entries, 0u);

  // And B's cold pass wrote its own entries alongside A's.
  const auto warm_b = b().analyze_batch(cfgs, rng, options);
  expect_verdicts_equal(warm_b, baseline_b, "model B warm");
  EXPECT_EQ(options.feature_store->stats().hits, cfgs.size());
}

TEST_F(StoreIdentityFixture, CorruptedEntriesDegradeToMissesDuringAnalysis) {
  const auto cfgs = test_cfgs(6);
  const math::Rng rng(23);
  const auto baseline = a().analyze_batch(cfgs, rng);

  {
    core::AnalyzeOptions options;
    options.feature_store = open_store();
    (void)a().analyze_batch(cfgs, rng, options);
  }

  // Inject corruption into every persisted entry.
  std::size_t tampered = 0;
  for (const auto& item : fs::recursive_directory_iterator(dir_)) {
    if (!item.is_regular_file()) continue;
    fs::resize_file(item.path(), fs::file_size(item.path()) - 3);
    ++tampered;
  }
  ASSERT_EQ(tampered, cfgs.size());

  // The store opens (header-size validation quarantines at open),
  // analysis serves misses, and the verdicts are still bit-identical.
  core::AnalyzeOptions options;
  options.feature_store = open_store();
  const auto verdicts = a().analyze_batch(cfgs, rng, options);
  expect_verdicts_equal(verdicts, baseline, "analysis over corrupt store");
  const auto stats = options.feature_store->stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.corrupt_entries, cfgs.size());
  EXPECT_EQ(stats.writes, cfgs.size());  // repopulated

  // And the repopulated store is healthy again.
  const auto warm = a().analyze_batch(cfgs, rng, options);
  expect_verdicts_equal(warm, baseline, "repopulated store");
  EXPECT_EQ(options.feature_store->stats().hits, cfgs.size());
}

#ifdef SOTERIA_HAVE_SERVE

std::vector<core::Verdict> collect(
    std::vector<std::future<core::Verdict>>& futures) {
  std::vector<core::Verdict> verdicts;
  verdicts.reserve(futures.size());
  for (auto& future : futures) verdicts.push_back(future.get());
  return verdicts;
}

TEST_F(StoreIdentityFixture, ServiceVerdictsBitIdenticalColdAndWarm) {
  const auto cfgs = test_cfgs(10);
  const math::Rng rng(641);
  const auto baseline = a().analyze_batch(cfgs, rng);

  serve::ServiceConfig config;
  config.seed = 641;  // request i walks with Rng(641).child(i)
  config.num_threads = 2;
  config.feature_store = open_store();

  const auto run_service = [&] {
    serve::AnalysisService service(
        *model_a, config);
    std::vector<std::future<core::Verdict>> futures;
    for (const auto& cfg : cfgs) {
      auto ticket = service.submit(cfg);
      ASSERT_TRUE(ticket.accepted());
      futures.push_back(std::move(ticket.verdict));
    }
    const auto verdicts = collect(futures);
    service.shutdown(serve::ShutdownPolicy::kDrain);
    expect_verdicts_equal(verdicts, baseline, "service vs analyze_batch");
  };

  run_service();  // cold: populates
  EXPECT_EQ(config.feature_store->stats().writes, cfgs.size());
  run_service();  // warm: hits, still bit-identical
  EXPECT_EQ(config.feature_store->stats().hits, cfgs.size());
}

TEST_F(StoreIdentityFixture, ServiceModelSwapMissesOnOldEntries) {
  const auto cfgs = test_cfgs(8);
  const math::Rng rng(901);

  serve::ServiceConfig config;
  config.seed = 901;
  config.num_threads = 1;
  config.feature_store = open_store();

  serve::AnalysisService service(
      *model_a, config);

  // First half under model A (populating A-fingerprint entries).
  std::vector<std::future<core::Verdict>> first_half;
  for (std::size_t i = 0; i < cfgs.size() / 2; ++i) {
    auto ticket = service.submit(cfgs[i]);
    ASSERT_TRUE(ticket.accepted());
    first_half.push_back(std::move(ticket.verdict));
  }
  const auto verdicts_a = collect(first_half);  // drain before the swap

  service.swap_model(*model_b);

  // Second half under model B: same CFGs, request ids continue. B's
  // fingerprint differs, so these must be store misses that still
  // produce exactly B's cold verdicts.
  const auto misses_before = config.feature_store->stats().misses;
  std::vector<std::future<core::Verdict>> second_half;
  for (std::size_t i = 0; i < cfgs.size() / 2; ++i) {
    auto ticket = service.submit(cfgs[i]);
    ASSERT_TRUE(ticket.accepted());
    second_half.push_back(std::move(ticket.verdict));
  }
  const auto verdicts_b = collect(second_half);
  service.shutdown(serve::ShutdownPolicy::kDrain);

  EXPECT_EQ(config.feature_store->stats().misses - misses_before,
            cfgs.size() / 2);

  // Expected verdicts: request id i maps to Rng(seed).child(i); the
  // post-swap requests took ids continuing after the first half.
  for (std::size_t i = 0; i < cfgs.size() / 2; ++i) {
    const auto expected_a = a().analyze(cfgs[i], rng.child(i), {});
    EXPECT_EQ(verdicts_a[i].reconstruction_error,
              expected_a.reconstruction_error)
        << "pre-swap request " << i;
    const auto expected_b =
        b().analyze(cfgs[i], rng.child(cfgs.size() / 2 + i), {});
    EXPECT_EQ(verdicts_b[i].reconstruction_error,
              expected_b.reconstruction_error)
        << "post-swap request " << i;
    EXPECT_EQ(verdicts_b[i].predicted, expected_b.predicted)
        << "post-swap request " << i;
  }
}

#endif  // SOTERIA_HAVE_SERVE

}  // namespace
}  // namespace soteria::store
