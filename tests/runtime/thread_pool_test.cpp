#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace soteria::runtime {
namespace {

TEST(ResolveThreads, ZeroMeansHardware) {
  EXPECT_EQ(resolve_threads(0), hardware_threads());
  EXPECT_GE(hardware_threads(), 1U);
}

TEST(ResolveThreads, LiteralOtherwise) {
  EXPECT_EQ(resolve_threads(1), 1U);
  EXPECT_EQ(resolve_threads(7), 7U);
  // Oversubscription is allowed: a 1-core machine can still exercise a
  // many-thread pool.
  EXPECT_EQ(resolve_threads(kMaxThreads), kMaxThreads);
}

TEST(ThreadPool, RejectsAbsurdThreadCounts) {
  EXPECT_THROW(ThreadPool pool(kMaxThreads + 1), std::invalid_argument);
}

TEST(ThreadPool, ReportsThreadCount) {
  EXPECT_EQ(ThreadPool(1).thread_count(), 1U);
  EXPECT_EQ(ThreadPool(4).thread_count(), 4U);
  EXPECT_EQ(ThreadPool(0).thread_count(), hardware_threads());
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (std::size_t threads : {1U, 2U, 4U, 8U}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPool, ZeroTasksReturnsImmediately) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleThreadRunsOnCallerInOrder) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.parallel_for(10, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0U);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, PoolIsReusableAcrossRegions) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950U);
  }
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  for (std::size_t threads : {1U, 4U}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(100,
                          [&](std::size_t i) {
                            if (i == 37) {
                              throw std::runtime_error("boom");
                            }
                          }),
        std::runtime_error);
    // The pool survives a poisoned region.
    std::atomic<std::size_t> count{0};
    pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 10U);
  }
}

TEST(ThreadPool, ExceptionSkipsUnclaimedIndices) {
  ThreadPool pool(2);
  std::atomic<std::size_t> executed{0};
  constexpr std::size_t kN = 10000;
  try {
    pool.parallel_for(kN, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("early");
      executed.fetch_add(1);
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error&) {
  }
  // Index 0 is claimed first (by some runner); once it throws, the
  // region is poisoned and most of the remaining indices are skipped.
  EXPECT_LT(executed.load(), kN - 1);
}

TEST(ThreadPool, NestedRegionsRunSeriallyWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<std::size_t> inner_total{0};
  pool.parallel_for(8, [&](std::size_t) {
    EXPECT_TRUE(in_parallel_region());
    // A body that calls back into the engine must not deadlock; it runs
    // the nested region inline on the current thread.
    parallel_for(4, 10, [&](std::size_t j) { inner_total.fetch_add(j); });
  });
  EXPECT_FALSE(in_parallel_region());
  EXPECT_EQ(inner_total.load(), 8U * 45U);
}

TEST(ThreadPool, WorkersActuallyParticipate) {
  // With enough indices and a brief busy-wait, a 4-thread pool should
  // execute bodies on more than one distinct thread. This is inherently
  // scheduling-dependent, so retry a few times before declaring failure.
  for (int attempt = 0; attempt < 5; ++attempt) {
    ThreadPool pool(4);
    std::mutex mutex;
    std::set<std::thread::id> ids;
    pool.parallel_for(64, [&](std::size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      const std::scoped_lock lock(mutex);
      ids.insert(std::this_thread::get_id());
    });
    if (ids.size() > 1) return;
  }
  FAIL() << "4-thread pool never used a second thread across 5 attempts";
}

TEST(ParallelMap, CollectsResultsByIndex) {
  for (std::size_t threads : {1U, 2U, 8U}) {
    const auto out = parallel_map(threads, 100, [](std::size_t i) {
      return static_cast<int>(i * i);
    });
    ASSERT_EQ(out.size(), 100U);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i * i));
    }
  }
}

TEST(ParallelMap, MemberVersionMatchesFree) {
  ThreadPool pool(3);
  const auto member = pool.parallel_map(50, [](std::size_t i) {
    return static_cast<double>(i) * 0.5;
  });
  const auto free_fn = parallel_map(3, 50, [](std::size_t i) {
    return static_cast<double>(i) * 0.5;
  });
  EXPECT_EQ(member, free_fn);
}

TEST(FreeParallelFor, RejectsAbsurdThreadCounts) {
  EXPECT_THROW(
      parallel_for(kMaxThreads + 1, 10, [](std::size_t) {}),
      std::invalid_argument);
}

TEST(FreeParallelFor, SingleIndexRunsInline) {
  const auto caller = std::this_thread::get_id();
  parallel_for(8, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0U);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

}  // namespace
}  // namespace soteria::runtime
