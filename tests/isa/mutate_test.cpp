#include "isa/mutate.h"

#include <gtest/gtest.h>

#include "cfg/extractor.h"
#include "dataset/family_profiles.h"
#include "isa/codegen.h"

namespace soteria::isa {
namespace {

AsmProgram sample_program(std::uint64_t seed) {
  math::Rng rng(seed);
  auto profile = dataset::profile_for(dataset::Family::kBenign);
  profile.max_functions = 4;
  return generate_program(profile, rng);
}

TEST(MutationConfig, Validation) {
  EXPECT_NO_THROW(validate(MutationConfig{}));
  MutationConfig inverted;
  inverted.min_imm_tweaks = 5;
  inverted.max_imm_tweaks = 1;
  EXPECT_THROW(validate(inverted), std::invalid_argument);
  MutationConfig negative;
  negative.min_diamond_insertions = -1;
  EXPECT_THROW(validate(negative), std::invalid_argument);
  MutationConfig zero_ops;
  zero_ops.min_helper_ops = 0;
  EXPECT_THROW(validate(zero_ops), std::invalid_argument);
}

TEST(Mutate, ResultAlwaysAssembles) {
  const auto base = sample_program(1);
  math::Rng rng(2);
  MutationConfig config;
  for (int i = 0; i < 20; ++i) {
    const auto mutated = mutate_program(base, config, rng);
    EXPECT_NO_THROW((void)assemble(mutated)) << "iteration " << i;
  }
}

TEST(Mutate, ChangesTheBinary) {
  const auto base = sample_program(3);
  const auto base_image = assemble(base);
  math::Rng rng(4);
  MutationConfig config;
  const auto mutated = assemble(mutate_program(base, config, rng));
  EXPECT_NE(mutated, base_image);
}

TEST(Mutate, DeterministicGivenRng) {
  const auto base = sample_program(5);
  MutationConfig config;
  math::Rng a(6);
  math::Rng b(6);
  EXPECT_EQ(assemble(mutate_program(base, config, a)),
            assemble(mutate_program(base, config, b)));
}

TEST(Mutate, ImmTweaksOnlyPreserveCfgShape) {
  const auto base = sample_program(7);
  MutationConfig imm_only;
  imm_only.min_straight_insertions = 0;
  imm_only.max_straight_insertions = 0;
  imm_only.min_diamond_insertions = 0;
  imm_only.max_diamond_insertions = 0;
  imm_only.min_helper_functions = 0;
  imm_only.max_helper_functions = 0;
  math::Rng rng(8);
  const auto mutated = mutate_program(base, imm_only, rng);
  const auto before = cfg::extract(assemble(base));
  const auto after = cfg::extract(assemble(mutated)) ;
  EXPECT_EQ(after.node_count(), before.node_count());
  EXPECT_EQ(after.edge_count(), before.edge_count());
}

TEST(Mutate, DiamondsAddBlocks) {
  const auto base = sample_program(9);
  MutationConfig diamonds;
  diamonds.min_imm_tweaks = 0;
  diamonds.max_imm_tweaks = 0;
  diamonds.min_straight_insertions = 0;
  diamonds.max_straight_insertions = 0;
  diamonds.min_diamond_insertions = 2;
  diamonds.max_diamond_insertions = 2;
  diamonds.min_helper_functions = 0;
  diamonds.max_helper_functions = 0;
  math::Rng rng(10);
  const auto mutated = mutate_program(base, diamonds, rng);
  const auto before = cfg::extract(assemble(base));
  const auto after = cfg::extract(assemble(mutated));
  EXPECT_GT(after.node_count(), before.node_count());
  // Each diamond adds at most 3 blocks (split + skipped + join).
  EXPECT_LE(after.node_count(), before.node_count() + 6);
}

TEST(Mutate, HelpersAddCallEdges) {
  const auto base = sample_program(11);
  MutationConfig helpers;
  helpers.min_imm_tweaks = 0;
  helpers.max_imm_tweaks = 0;
  helpers.min_straight_insertions = 0;
  helpers.max_straight_insertions = 0;
  helpers.min_diamond_insertions = 0;
  helpers.max_diamond_insertions = 0;
  helpers.min_helper_functions = 1;
  helpers.max_helper_functions = 1;
  math::Rng rng(12);
  const auto mutated = mutate_program(base, helpers, rng);
  EXPECT_GE(mutated.instruction_count(),
            base.instruction_count() + 3U);  // call + >=2 body + ret
}

TEST(Mutate, ClusterStaysNearTemplate) {
  // Structural spread across many mutations stays bounded — the
  // property the strain-based corpus relies on.
  const auto base = sample_program(13);
  const auto base_nodes =
      cfg::extract(assemble(base)).node_count();
  MutationConfig config;
  math::Rng rng(14);
  for (int i = 0; i < 10; ++i) {
    const auto mutated = mutate_program(base, config, rng);
    const auto nodes = cfg::extract(assemble(mutated)).node_count();
    EXPECT_LT(nodes, base_nodes + 16);
    EXPECT_GE(nodes + 2, base_nodes);  // pruning can drop a stray block
  }
}

}  // namespace
}  // namespace soteria::isa
