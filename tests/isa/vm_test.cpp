#include "isa/vm.h"

#include <gtest/gtest.h>

#include "dataset/family_profiles.h"
#include "isa/assembler.h"
#include "isa/codegen.h"
#include "isa/mutate.h"

namespace soteria::isa {
namespace {

std::vector<std::uint8_t> assemble_program(
    const std::function<void(AsmProgram&)>& build) {
  AsmProgram p;
  build(p);
  return assemble(p);
}

TEST(Vm, HaltTerminatesCleanly) {
  const auto image = assemble_program([](AsmProgram& p) {
    p.emit(Opcode::kMovImm, 0, 42);
    p.emit(Opcode::kHalt);
  });
  const auto result = execute(image);
  EXPECT_EQ(result.status, VmStatus::kHalted);
  EXPECT_EQ(result.steps, 2U);
}

TEST(Vm, EmptyImageThrows) {
  EXPECT_THROW((void)execute(std::vector<std::uint8_t>{}),
               std::invalid_argument);
}

TEST(Vm, LoopRunsToCompletion) {
  // r1 = 5; while (r1 != 0) r1 -= r2(=1);
  const auto image = assemble_program([](AsmProgram& p) {
    p.emit(Opcode::kMovImm, 2, 1);
    p.emit(Opcode::kMovImm, 1, 5);
    p.define_label("head");
    p.emit(Opcode::kCmpImm, 1, 0);
    p.emit_branch(Opcode::kJz, "end");
    p.emit(Opcode::kSub, 1, 2);
    p.emit_branch(Opcode::kJmp, "head");
    p.define_label("end");
    p.emit(Opcode::kHalt);
  });
  const auto result = execute(image);
  EXPECT_EQ(result.status, VmStatus::kHalted);
  // 2 setup + 5 * (cmp, jz, sub, jmp) + final (cmp, jz) + halt.
  EXPECT_EQ(result.steps, 2 + 5 * 4 + 2 + 1U);
}

TEST(Vm, InfiniteLoopHitsStepLimit) {
  const auto image = assemble_program([](AsmProgram& p) {
    p.define_label("spin");
    p.emit_branch(Opcode::kJmp, "spin");
  });
  VmConfig config;
  config.max_steps = 1000;
  const auto result = execute(image, config);
  EXPECT_EQ(result.status, VmStatus::kStepLimit);
  EXPECT_EQ(result.steps, 1000U);
}

TEST(Vm, CallAndRetNest) {
  const auto image = assemble_program([](AsmProgram& p) {
    p.emit_branch(Opcode::kCall, "f");
    p.emit(Opcode::kHalt);
    p.define_label("f");
    p.emit_branch(Opcode::kCall, "g");
    p.emit(Opcode::kRet);
    p.define_label("g");
    p.emit(Opcode::kRet);
  });
  const auto result = execute(image);
  EXPECT_EQ(result.status, VmStatus::kHalted);
  EXPECT_EQ(result.max_call_depth, 2U);
}

TEST(Vm, RetWithoutCallFaults) {
  const auto image = assemble_program([](AsmProgram& p) {
    p.emit(Opcode::kRet);
  });
  const auto result = execute(image);
  EXPECT_EQ(result.status, VmStatus::kFault);
  EXPECT_EQ(result.faulting_index, 0U);
}

TEST(Vm, PopOnEmptyStackFaults) {
  const auto image = assemble_program([](AsmProgram& p) {
    p.emit(Opcode::kPop, 3);
    p.emit(Opcode::kHalt);
  });
  EXPECT_EQ(execute(image).status, VmStatus::kFault);
}

TEST(Vm, PushPopRoundTrips) {
  const auto image = assemble_program([](AsmProgram& p) {
    p.emit(Opcode::kMovImm, 0, 7);
    p.emit(Opcode::kPush, 0);
    p.emit(Opcode::kMovImm, 0, 9);
    p.emit(Opcode::kPop, 1);
    p.emit(Opcode::kCmpImm, 1, 7);
    p.emit_branch(Opcode::kJz, "ok");
    p.emit(Opcode::kRet);  // would fault if the pop was wrong
    p.define_label("ok");
    p.emit(Opcode::kHalt);
  });
  EXPECT_EQ(execute(image).status, VmStatus::kHalted);
}

TEST(Vm, UnboundedRecursionFaultsOnStackLimit) {
  const auto image = assemble_program([](AsmProgram& p) {
    p.define_label("f");
    p.emit_branch(Opcode::kCall, "f");
  });
  VmConfig config;
  config.stack_limit = 64;
  const auto result = execute(image, config);
  EXPECT_EQ(result.status, VmStatus::kFault);
}

TEST(Vm, SyscallsAreCounted) {
  const auto image = assemble_program([](AsmProgram& p) {
    p.emit(Opcode::kSyscall, 0, 1);
    p.emit(Opcode::kSyscall, 0, 2);
    p.emit(Opcode::kHalt);
  });
  EXPECT_EQ(execute(image).syscalls, 2U);
}

TEST(Vm, MemoryLoadStoreWrapsAddresses) {
  const auto image = assemble_program([](AsmProgram& p) {
    p.emit(Opcode::kMovImm, 0, 123);
    p.emit(Opcode::kMovImm, 2, 40);
    p.emit(Opcode::kStore, 0, 2);   // mem[r2 + 2] = r0
    p.emit(Opcode::kLoad, 1, 2);    // r1 = mem[r2 + 2]
    p.emit(Opcode::kCmpImm, 1, 123);
    p.emit_branch(Opcode::kJz, "ok");
    p.emit(Opcode::kRet);  // fault path
    p.define_label("ok");
    p.emit(Opcode::kHalt);
  });
  EXPECT_EQ(execute(image).status, VmStatus::kHalted);
}

TEST(Vm, StatusNames) {
  EXPECT_STREQ(vm_status_name(VmStatus::kHalted), "halted");
  EXPECT_STREQ(vm_status_name(VmStatus::kStepLimit), "step-limit");
  EXPECT_STREQ(vm_status_name(VmStatus::kFault), "fault");
}

// The practicality invariant: every generated firmware sample runs to a
// clean halt, and so does every mutated variant.
class FamilyExecution
    : public ::testing::TestWithParam<soteria::dataset::Family> {};

TEST_P(FamilyExecution, GeneratedProgramsHalt) {
  math::Rng rng(101);
  const auto profile = dataset::profile_for(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const auto binary = generate_binary(profile, rng);
    const auto result = execute(binary);
    EXPECT_EQ(result.status, VmStatus::kHalted)
        << "trial " << trial << ": " << vm_status_name(result.status);
  }
}

TEST_P(FamilyExecution, MutatedProgramsStillHalt) {
  math::Rng rng(202);
  const auto profile = dataset::profile_for(GetParam());
  MutationConfig mutation;
  mutation.max_diamond_insertions = 2;
  mutation.max_helper_functions = 1;
  for (int trial = 0; trial < 5; ++trial) {
    const auto program = generate_program(profile, rng);
    const auto mutated = mutate_program(program, mutation, rng);
    const auto result = execute(assemble(mutated));
    EXPECT_EQ(result.status, VmStatus::kHalted)
        << "trial " << trial << ": " << vm_status_name(result.status);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilyExecution,
    ::testing::Values(soteria::dataset::Family::kBenign,
                      soteria::dataset::Family::kGafgyt,
                      soteria::dataset::Family::kMirai,
                      soteria::dataset::Family::kTsunami),
    [](const auto& info) {
      return soteria::dataset::family_name(info.param);
    });

}  // namespace
}  // namespace soteria::isa
