#include "isa/assembler.h"

#include <gtest/gtest.h>

namespace soteria::isa {
namespace {

TEST(Assembler, EmitsPlainInstructions) {
  AsmProgram p;
  p.emit(Opcode::kMovImm, 1, 42);
  p.emit(Opcode::kHalt);
  const auto image = assemble(p);
  ASSERT_EQ(image.size(), 2 * kInstructionSize);
  const auto insns = disassemble(image);
  EXPECT_EQ(insns[0].opcode, Opcode::kMovImm);
  EXPECT_EQ(insns[0].imm, 42);
  EXPECT_EQ(insns[1].opcode, Opcode::kHalt);
}

TEST(Assembler, ResolvesForwardLabel) {
  AsmProgram p;
  p.emit_branch(Opcode::kJmp, "end");
  p.emit(Opcode::kNop);
  p.define_label("end");
  p.emit(Opcode::kHalt);
  const auto insns = disassemble(assemble(p));
  // jmp at 0, target at 2: offset = 2 - (0 + 1) = 1.
  EXPECT_EQ(insns[0].imm, 1);
}

TEST(Assembler, ResolvesBackwardLabel) {
  AsmProgram p;
  p.define_label("loop");
  p.emit(Opcode::kCmpImm, 1, 0);
  p.emit_branch(Opcode::kJnz, "loop");
  p.emit(Opcode::kHalt);
  const auto insns = disassemble(assemble(p));
  // jnz at 1, target 0: offset = 0 - 2 = -2.
  EXPECT_EQ(insns[1].imm, -2);
}

TEST(Assembler, LabelAtSameInstructionIsZeroMinusOne) {
  AsmProgram p;
  p.define_label("self");
  p.emit_branch(Opcode::kJmp, "self");
  const auto insns = disassemble(assemble(p));
  EXPECT_EQ(insns[0].imm, -1);  // jumps back to itself
}

TEST(Assembler, UndefinedLabelThrows) {
  AsmProgram p;
  p.emit_branch(Opcode::kJmp, "nowhere");
  EXPECT_THROW((void)assemble(p), std::invalid_argument);
}

TEST(Assembler, DuplicateLabelThrowsAtDefinition) {
  AsmProgram p;
  p.define_label("x");
  EXPECT_THROW(p.define_label("x"), std::invalid_argument);
}

TEST(Assembler, BranchWithNonControlFlowOpcodeThrows) {
  AsmProgram p;
  EXPECT_THROW(p.emit_branch(Opcode::kAdd, "x"), std::invalid_argument);
}

TEST(Assembler, FreshLabelsAreUnique) {
  AsmProgram p;
  const auto a = p.fresh_label("L");
  const auto b = p.fresh_label("L");
  EXPECT_NE(a, b);
}

TEST(Assembler, InstructionCountIgnoresLabels) {
  AsmProgram p;
  p.define_label("a");
  p.emit(Opcode::kNop);
  p.define_label("b");
  p.emit(Opcode::kHalt);
  EXPECT_EQ(p.instruction_count(), 2U);
}

TEST(Assembler, AppendMergesPrograms) {
  AsmProgram a;
  a.emit(Opcode::kNop);
  AsmProgram b;
  b.define_label("f");
  b.emit(Opcode::kRet);
  a.append(b);
  EXPECT_EQ(a.instruction_count(), 2U);
  const auto insns = disassemble(assemble(a));
  EXPECT_EQ(insns[1].opcode, Opcode::kRet);
}

TEST(Assembler, AppendDetectsLabelCollision) {
  AsmProgram a;
  a.define_label("f");
  AsmProgram b;
  b.define_label("f");
  EXPECT_THROW(a.append(b), std::invalid_argument);
}

TEST(Assembler, OffsetOverflowThrows) {
  AsmProgram p;
  p.emit_branch(Opcode::kJmp, "far");
  for (int i = 0; i < 40000; ++i) p.emit(Opcode::kNop);
  p.define_label("far");
  p.emit(Opcode::kHalt);
  EXPECT_THROW((void)assemble(p), std::out_of_range);
}

}  // namespace
}  // namespace soteria::isa
