#include "isa/codegen.h"

#include <gtest/gtest.h>

#include "cfg/extractor.h"
#include "dataset/family_profiles.h"
#include "graph/traversal.h"

namespace soteria::isa {
namespace {

TEST(CodeGenValidate, AcceptsDefaults) {
  EXPECT_NO_THROW(validate(CodeGenProfile{}));
}

TEST(CodeGenValidate, RejectsBadRanges) {
  CodeGenProfile p;
  p.min_functions = 5;
  p.max_functions = 2;
  EXPECT_THROW(validate(p), std::invalid_argument);

  p = CodeGenProfile{};
  p.min_constructs = 0;
  EXPECT_THROW(validate(p), std::invalid_argument);

  p = CodeGenProfile{};
  p.min_switch_cases = 9;
  p.max_switch_cases = 3;
  EXPECT_THROW(validate(p), std::invalid_argument);
}

TEST(CodeGenValidate, RejectsBadProbabilities) {
  CodeGenProfile p;
  p.nest_probability = 1.5;
  EXPECT_THROW(validate(p), std::invalid_argument);

  p = CodeGenProfile{};
  p.call_probability = -0.1;
  EXPECT_THROW(validate(p), std::invalid_argument);
}

TEST(CodeGenValidate, RejectsDegenerateWeights) {
  CodeGenProfile p;
  p.straight_weight = 0.0;
  p.branch_weight = 0.0;
  p.loop_weight = 0.0;
  p.switch_weight = 0.0;
  EXPECT_THROW(validate(p), std::invalid_argument);

  p = CodeGenProfile{};
  p.loop_weight = -1.0;
  EXPECT_THROW(validate(p), std::invalid_argument);
}

TEST(CodeGen, ProgramAssembles) {
  CodeGenProfile p;
  math::Rng rng(1);
  const auto program = generate_program(p, rng);
  EXPECT_GT(program.instruction_count(), 0U);
  EXPECT_NO_THROW((void)assemble(program));
}

TEST(CodeGen, DeterministicGivenSeed) {
  CodeGenProfile p;
  math::Rng a(9);
  math::Rng b(9);
  EXPECT_EQ(generate_binary(p, a), generate_binary(p, b));
}

TEST(CodeGen, DifferentSeedsDiffer) {
  CodeGenProfile p;
  math::Rng a(9);
  math::Rng b(10);
  EXPECT_NE(generate_binary(p, a), generate_binary(p, b));
}

TEST(CodeGen, EndsWithHaltInMain) {
  CodeGenProfile p;
  p.min_functions = 1;
  p.max_functions = 1;
  math::Rng rng(2);
  const auto insns = disassemble(generate_binary(p, rng));
  bool has_halt = false;
  for (const auto& insn : insns) has_halt |= insn.opcode == Opcode::kHalt;
  EXPECT_TRUE(has_halt);
}

// Every generated program must produce a CFG whose blocks are all
// reachable from the entry — the call-plan guarantee.
class FamilyProgram
    : public ::testing::TestWithParam<soteria::dataset::Family> {};

TEST_P(FamilyProgram, AllFunctionsReachable) {
  const auto profile = dataset::profile_for(GetParam());
  math::Rng rng(33);
  for (int trial = 0; trial < 5; ++trial) {
    const auto binary = generate_binary(profile, rng);
    cfg::ExtractOptions keep_all;
    keep_all.prune_unreachable = false;
    const auto full = cfg::extract(binary, keep_all);
    const auto pruned = cfg::extract(binary);
    // Pruning may only drop blocks that are genuinely unreachable; a
    // generated program should lose only a tiny tail (blocks after
    // rets whose only entry was fall-through never taken).
    EXPECT_GE(full.node_count(), pruned.node_count());
    EXPECT_GT(pruned.node_count(), 0U);
    // The pruned CFG is connected from its entry by construction.
    const auto reach =
        graph::reachable_from(pruned.graph(), pruned.entry());
    for (bool r : reach) EXPECT_TRUE(r);
  }
}

TEST_P(FamilyProgram, ProfileIsValid) {
  EXPECT_NO_THROW(validate(dataset::profile_for(GetParam())));
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilyProgram,
    ::testing::Values(soteria::dataset::Family::kBenign,
                      soteria::dataset::Family::kGafgyt,
                      soteria::dataset::Family::kMirai,
                      soteria::dataset::Family::kTsunami),
    [](const auto& info) {
      return soteria::dataset::family_name(info.param);
    });

}  // namespace
}  // namespace soteria::isa
