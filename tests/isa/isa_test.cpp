#include "isa/isa.h"

#include <gtest/gtest.h>

namespace soteria::isa {
namespace {

const Opcode kAllOpcodes[] = {
    Opcode::kNop,    Opcode::kHalt,   Opcode::kMovImm, Opcode::kMovReg,
    Opcode::kAdd,    Opcode::kSub,    Opcode::kMul,    Opcode::kXor,
    Opcode::kAnd,    Opcode::kOr,     Opcode::kShl,    Opcode::kShr,
    Opcode::kCmp,    Opcode::kCmpImm, Opcode::kLoad,   Opcode::kStore,
    Opcode::kPush,   Opcode::kPop,    Opcode::kJmp,    Opcode::kJz,
    Opcode::kJnz,    Opcode::kJlt,    Opcode::kJge,    Opcode::kCall,
    Opcode::kRet,    Opcode::kSyscall};

class OpcodeRoundTrip : public ::testing::TestWithParam<Opcode> {};

TEST_P(OpcodeRoundTrip, EncodeDecodeIsIdentity) {
  const Instruction original{GetParam(), 7, -1234};
  const auto bytes = encode(original);
  const auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
}

TEST_P(OpcodeRoundTrip, OpcodeIsValid) {
  EXPECT_TRUE(is_valid_opcode(static_cast<std::uint8_t>(GetParam())));
}

TEST_P(OpcodeRoundTrip, MnemonicNonEmpty) {
  EXPECT_FALSE(mnemonic(GetParam()).empty());
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeRoundTrip,
                         ::testing::ValuesIn(kAllOpcodes));

TEST(Isa, ControlFlowClassification) {
  EXPECT_TRUE(is_control_flow(Opcode::kJmp));
  EXPECT_TRUE(is_control_flow(Opcode::kCall));
  EXPECT_FALSE(is_control_flow(Opcode::kRet));  // target-less
  EXPECT_FALSE(is_control_flow(Opcode::kAdd));

  EXPECT_TRUE(is_conditional_branch(Opcode::kJz));
  EXPECT_TRUE(is_conditional_branch(Opcode::kJge));
  EXPECT_FALSE(is_conditional_branch(Opcode::kJmp));
  EXPECT_FALSE(is_conditional_branch(Opcode::kCall));

  EXPECT_TRUE(ends_basic_block(Opcode::kRet));
  EXPECT_TRUE(ends_basic_block(Opcode::kHalt));
  EXPECT_TRUE(ends_basic_block(Opcode::kJnz));
  EXPECT_FALSE(ends_basic_block(Opcode::kMovImm));
}

TEST(Isa, InvalidOpcodeDecodesToNothing) {
  const std::vector<std::uint8_t> bytes{0xFF, 0x00, 0x00, 0x00};
  EXPECT_FALSE(decode(bytes).has_value());
  EXPECT_FALSE(is_valid_opcode(0xFF));
  EXPECT_FALSE(is_valid_opcode(0x02));
}

TEST(Isa, DecodeRequiresFourBytes) {
  const std::vector<std::uint8_t> bytes{0x00, 0x00};
  EXPECT_THROW((void)decode(bytes), std::invalid_argument);
}

TEST(Isa, ImmediateIsLittleEndianSigned) {
  const Instruction insn{Opcode::kJmp, 0, -2};
  const auto bytes = encode(insn);
  EXPECT_EQ(bytes[2], 0xFE);
  EXPECT_EQ(bytes[3], 0xFF);
  const auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->imm, -2);
}

TEST(Isa, DisassembleRoundTripsLength) {
  std::vector<std::uint8_t> image;
  encode_to(Instruction{Opcode::kMovImm, 1, 5}, image);
  encode_to(Instruction{Opcode::kJmp, 0, -1}, image);
  encode_to(Instruction{Opcode::kHalt, 0, 0}, image);
  const auto insns = disassemble(image);
  ASSERT_EQ(insns.size(), 3U);
  EXPECT_EQ(insns[0].opcode, Opcode::kMovImm);
  EXPECT_EQ(insns[1].imm, -1);
  EXPECT_EQ(insns[2].opcode, Opcode::kHalt);
}

TEST(Isa, DisassembleTreatsUnknownWordsAsData) {
  const std::vector<std::uint8_t> image{0xAB, 0x01, 0x02, 0x03};
  const auto insns = disassemble(image);
  ASSERT_EQ(insns.size(), 1U);
  EXPECT_EQ(insns[0].opcode, Opcode::kNop);
}

TEST(Isa, DisassembleRejectsRaggedImages) {
  const std::vector<std::uint8_t> image{0x00, 0x00, 0x00};
  EXPECT_THROW((void)disassemble(image), std::invalid_argument);
}

TEST(Isa, ToStringShowsAbsoluteTargets) {
  // jmp at index 5 with imm +2 targets instruction 8.
  const Instruction jmp{Opcode::kJmp, 0, 2};
  EXPECT_EQ(to_string(jmp, 5), "jmp @8");
  const Instruction mov{Opcode::kMovImm, 3, 42};
  EXPECT_EQ(to_string(mov, 0), "mov r3, 42");
  EXPECT_EQ(to_string(Instruction{Opcode::kRet, 0, 0}, 9), "ret");
}

}  // namespace
}  // namespace soteria::isa
