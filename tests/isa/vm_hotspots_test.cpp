#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/vm.h"

namespace soteria::isa {
namespace {

TEST(VmHotspots, DisabledByDefault) {
  AsmProgram p;
  p.emit(Opcode::kNop);
  p.emit(Opcode::kHalt);
  const auto result = execute(assemble(p));
  EXPECT_TRUE(result.hotspots.empty());
}

TEST(VmHotspots, RanksLoopBodyFirst) {
  AsmProgram p;
  p.emit(Opcode::kMovImm, 2, 1);
  p.emit(Opcode::kMovImm, 1, 50);
  p.define_label("head");
  p.emit(Opcode::kCmpImm, 1, 0);
  p.emit_branch(Opcode::kJz, "end");
  p.emit(Opcode::kXor, 3, 3);  // loop body marker
  p.emit(Opcode::kSub, 1, 2);
  p.emit_branch(Opcode::kJmp, "head");
  p.define_label("end");
  p.emit(Opcode::kHalt);

  VmConfig config;
  config.record_hotspots = true;
  config.hotspot_count = 3;
  const auto result = execute(assemble(p), config);
  ASSERT_EQ(result.status, VmStatus::kHalted);
  ASSERT_EQ(result.hotspots.size(), 3U);
  // The loop instructions (indices 2..6) dominate; each ran ~50 times.
  for (const auto& [index, count] : result.hotspots) {
    EXPECT_GE(index, 2U);
    EXPECT_LE(index, 6U);
    EXPECT_GE(count, 50U);
  }
  // Sorted hottest-first.
  for (std::size_t i = 1; i < result.hotspots.size(); ++i) {
    EXPECT_GE(result.hotspots[i - 1].second, result.hotspots[i].second);
  }
}

TEST(VmHotspots, ReportedEvenOnStepLimit) {
  AsmProgram p;
  p.define_label("spin");
  p.emit(Opcode::kNop);
  p.emit_branch(Opcode::kJmp, "spin");
  VmConfig config;
  config.record_hotspots = true;
  config.max_steps = 500;
  const auto result = execute(assemble(p), config);
  EXPECT_EQ(result.status, VmStatus::kStepLimit);
  ASSERT_FALSE(result.hotspots.empty());
  EXPECT_GE(result.hotspots.front().second, 200U);
}

TEST(VmHotspots, CapRespected) {
  AsmProgram p;
  for (int i = 0; i < 10; ++i) p.emit(Opcode::kNop);
  p.emit(Opcode::kHalt);
  VmConfig config;
  config.record_hotspots = true;
  config.hotspot_count = 4;
  const auto result = execute(assemble(p), config);
  EXPECT_LE(result.hotspots.size(), 4U);
}

}  // namespace
}  // namespace soteria::isa
