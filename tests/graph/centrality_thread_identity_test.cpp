// Thread-count bit-identity regression tests for the repaired parallel
// Brandes path (per-slot partial accumulators over dynamic source
// chunks, merged once per region — src/graph/centrality.cpp).
//
// The contract: at every thread count the parallel sweep is
// bit-identical to the serial sweep, which the fused property suite
// already pins against the preserved naive oracle. This file runs in
// the `concurrency` ctest binary so TSan exercises the slotted merge
// itself (tests/graph/naive_centrality.h stays the single source of
// expected values; do not relax EXPECT_EQ to a tolerance — integer
// accumulators make bitwise equality the specification).
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/centrality.h"
#include "graph/generators.h"
#include "math/rng.h"

#include "graph/naive_centrality.h"

namespace soteria::graph {
namespace {

struct Shape {
  std::string name;
  DiGraph graph;
};

[[nodiscard]] std::vector<Shape> shapes() {
  math::Rng rng(640);
  std::vector<Shape> out;
  out.push_back({"random", random_connected_dag_plus(300, 0.02, rng)});
  out.push_back({"scale_free", scale_free_digraph(300, 3, rng)});
  out.push_back({"firmware", firmware_like_cfg(400, rng)});
  out.push_back({"chain", chain_graph(200, 12, rng)});
  return out;
}

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

TEST(CentralityThreadIdentity, ExactMatchesNaiveOracleAtEveryThreadCount) {
  for (const auto& shape : shapes()) {
    SCOPED_TRACE(shape.name);
    const auto expected_betweenness =
        naive::betweenness_centrality(shape.graph);
    const auto expected_closeness = naive::closeness_centrality(shape.graph);
    for (const std::size_t threads : kThreadCounts) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      const auto scores = centrality_scores(shape.graph, threads);
      EXPECT_EQ(scores.betweenness, expected_betweenness);
      EXPECT_EQ(scores.closeness, expected_closeness);
    }
  }
}

TEST(CentralityThreadIdentity, ApproxBitIdenticalAcrossThreadCounts) {
  for (const auto& shape : shapes()) {
    SCOPED_TRACE(shape.name);
    CentralityOptions options;
    options.approximate = true;
    options.approx.pivot_count = shape.graph.node_count() / 4;
    options.num_threads = 1;
    const auto baseline = centrality_scores(shape.graph, options);
    for (const std::size_t threads : kThreadCounts) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      options.num_threads = threads;
      const auto scores = centrality_scores(shape.graph, options);
      EXPECT_EQ(scores.betweenness, baseline.betweenness);
      EXPECT_EQ(scores.closeness, baseline.closeness);
    }
  }
}

TEST(CentralityThreadIdentity, CentralityFactorMatchesAtEveryThreadCount) {
  math::Rng rng(641);
  const DiGraph g = firmware_like_cfg(350, rng);
  const auto expected = naive::centrality_factor(g);
  for (const std::size_t threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(centrality_factor(g, threads), expected);
  }
}

}  // namespace
}  // namespace soteria::graph
