#include "graph/centrality.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "math/rng.h"

namespace soteria::graph {
namespace {

// Path 0 - 1 - 2 (directed 0->1->2; centrality uses the undirected view).
DiGraph path3() {
  DiGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  return g;
}

TEST(Betweenness, PathCenterCarriesAllPaths) {
  const auto b = betweenness_centrality(path3());
  // Exactly one shortest path (0-2) passes through node 1, out of the
  // three pair paths {0-1, 0-2, 1-2} -> 1/3 under the paper's
  // Delta(v)/Delta(m) normalization.
  EXPECT_DOUBLE_EQ(b[0], 0.0);
  EXPECT_NEAR(b[1], 1.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(b[2], 0.0);
}

TEST(Betweenness, StarHubDominates) {
  DiGraph g(5);  // hub 0 with 4 spokes
  for (NodeId v = 1; v < 5; ++v) g.add_edge(0, v);
  const auto b = betweenness_centrality(g);
  EXPECT_GT(b[0], 0.0);
  for (NodeId v = 1; v < 5; ++v) EXPECT_DOUBLE_EQ(b[v], 0.0);
  // Star with 4 spokes: pair paths = 4 (hub-spoke) + 6 (spoke-spoke),
  // all 6 spoke pairs pass the hub -> 6/10.
  EXPECT_NEAR(b[0], 0.6, 1e-9);
}

TEST(Betweenness, TinyGraphsAreZero) {
  EXPECT_TRUE(betweenness_centrality(DiGraph(0)).empty());
  const auto one = betweenness_centrality(DiGraph(1));
  EXPECT_DOUBLE_EQ(one[0], 0.0);
  DiGraph two(2);
  two.add_edge(0, 1);
  for (double v : betweenness_centrality(two)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Betweenness, SymmetricNodesTie) {
  // Diamond: 0 -> {1,2} -> 3; nodes 1 and 2 are symmetric.
  DiGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const auto b = betweenness_centrality(g);
  EXPECT_DOUBLE_EQ(b[1], b[2]);
  EXPECT_GT(b[1], 0.0);
}

TEST(Closeness, PathCenterIsClosest) {
  const auto c = closeness_centrality(path3());
  // center: distances {1,1} -> 2/2 = 1.0; ends: {1,2} -> 2/3.
  EXPECT_NEAR(c[1], 1.0, 1e-9);
  EXPECT_NEAR(c[0], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(c[2], 2.0 / 3.0, 1e-9);
}

TEST(Closeness, IsolatedNodeIsZero) {
  DiGraph g(3);
  g.add_edge(0, 1);
  const auto c = closeness_centrality(g);
  EXPECT_DOUBLE_EQ(c[2], 0.0);
  EXPECT_GT(c[0], 0.0);
}

TEST(Closeness, SingleNodeGraph) {
  const auto c = closeness_centrality(DiGraph(1));
  EXPECT_DOUBLE_EQ(c[0], 0.0);
}

TEST(CentralityFactor, IsSumOfBoth) {
  const auto g = path3();
  const auto cf = centrality_factor(g);
  const auto b = betweenness_centrality(g);
  const auto c = closeness_centrality(g);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_DOUBLE_EQ(cf[v], b[v] + c[v]);
  }
}

TEST(CentralityFactor, HigherForStructuralHubs) {
  math::Rng rng(1);
  const auto tree = binary_tree(3);
  const auto cf = centrality_factor(tree);
  // The root and internal nodes outrank the leaves.
  EXPECT_GT(cf[1], cf[7]);
  EXPECT_GT(cf[0], cf[14]);
}

TEST(Betweenness, AgreesWithBruteForceOnRandomGraphs) {
  // Brute-force Delta(v) via explicit path counting on small graphs.
  math::Rng rng(7);
  for (int trial = 0; trial < 3; ++trial) {
    const auto g = random_connected_dag_plus(8, 0.15, rng);
    const auto fast = betweenness_centrality(g);

    // Floyd-Warshall distances + path counts over the undirected view.
    const std::size_t n = g.node_count();
    std::vector<std::vector<double>> dist(n,
                                          std::vector<double>(n, 1e18));
    std::vector<std::vector<double>> paths(n, std::vector<double>(n, 0.0));
    for (NodeId v = 0; v < n; ++v) {
      dist[v][v] = 0.0;
      paths[v][v] = 1.0;
    }
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v : g.undirected_neighbors(u)) {
        if (u == v) continue;
        dist[u][v] = 1.0;
        paths[u][v] = 1.0;
      }
    }
    for (NodeId k = 0; k < n; ++k) {
      for (NodeId i = 0; i < n; ++i) {
        for (NodeId j = 0; j < n; ++j) {
          if (i == j || i == k || j == k) continue;
          const double through = dist[i][k] + dist[k][j];
          if (through < dist[i][j] - 1e-9) {
            dist[i][j] = through;
            paths[i][j] = paths[i][k] * paths[k][j];
          } else if (std::abs(through - dist[i][j]) < 1e-9) {
            paths[i][j] += paths[i][k] * paths[k][j];
          }
        }
      }
    }
    // Count, for each v, shortest paths through v; normalize by total.
    double total = 0.0;
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = i + 1; j < n; ++j) {
        if (dist[i][j] < 1e17) total += paths[i][j];
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      double through = 0.0;
      for (NodeId i = 0; i < n; ++i) {
        for (NodeId j = i + 1; j < n; ++j) {
          if (i == v || j == v || dist[i][j] > 1e17) continue;
          if (std::abs(dist[i][v] + dist[v][j] - dist[i][j]) < 1e-9) {
            through += paths[i][v] * paths[v][j];
          }
        }
      }
      EXPECT_NEAR(fast[v], through / total, 1e-6)
          << "trial " << trial << " node " << v;
    }
  }
}

}  // namespace
}  // namespace soteria::graph
