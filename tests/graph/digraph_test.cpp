#include "graph/digraph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace soteria::graph {
namespace {

TEST(DiGraph, StartsEmpty) {
  const DiGraph g;
  EXPECT_EQ(g.node_count(), 0U);
  EXPECT_EQ(g.edge_count(), 0U);
  EXPECT_TRUE(g.empty());
}

TEST(DiGraph, SizedConstructorMakesIsolatedNodes) {
  const DiGraph g(4);
  EXPECT_EQ(g.node_count(), 4U);
  EXPECT_EQ(g.edge_count(), 0U);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(g.out_degree(v), 0U);
    EXPECT_EQ(g.in_degree(v), 0U);
  }
}

TEST(DiGraph, AddNodeReturnsSequentialIds) {
  DiGraph g;
  EXPECT_EQ(g.add_node(), 0U);
  EXPECT_EQ(g.add_node(), 1U);
  EXPECT_EQ(g.node_count(), 2U);
}

TEST(DiGraph, AddEdgeUpdatesAdjacency) {
  DiGraph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_TRUE(g.add_edge(0, 2));
  EXPECT_EQ(g.edge_count(), 2U);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.out_degree(0), 2U);
  EXPECT_EQ(g.in_degree(1), 1U);
  EXPECT_EQ(g.total_degree(0), 2U);
}

TEST(DiGraph, ParallelEdgeIsRejected) {
  DiGraph g(2);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 1U);
}

TEST(DiGraph, SelfLoopAllowedAndCountsTwice) {
  DiGraph g(1);
  EXPECT_TRUE(g.add_edge(0, 0));
  EXPECT_EQ(g.total_degree(0), 2U);
  const auto nbrs = g.undirected_neighbors(0);
  ASSERT_EQ(nbrs.size(), 1U);
  EXPECT_EQ(nbrs[0], 0U);
}

TEST(DiGraph, InvalidEndpointsThrow) {
  DiGraph g(2);
  EXPECT_THROW(g.add_edge(0, 2), std::out_of_range);
  EXPECT_THROW(g.add_edge(2, 0), std::out_of_range);
  EXPECT_THROW((void)g.has_edge(0, 5), std::out_of_range);
  EXPECT_THROW((void)g.successors(9), std::out_of_range);
  EXPECT_THROW((void)g.predecessors(9), std::out_of_range);
  EXPECT_THROW((void)g.out_degree(9), std::out_of_range);
}

TEST(DiGraph, UndirectedNeighborsDeduplicates) {
  DiGraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const auto nbrs = g.undirected_neighbors(0);
  ASSERT_EQ(nbrs.size(), 1U);
  EXPECT_EQ(nbrs[0], 1U);
}

TEST(DiGraph, EdgesEnumeratesAll) {
  DiGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  auto edges = g.edges();
  ASSERT_EQ(edges.size(), 3U);
  EXPECT_TRUE(std::find(edges.begin(), edges.end(),
                        std::make_pair(NodeId{1}, NodeId{2})) != edges.end());
}

TEST(DiGraph, MergeDisjointOffsetsIds) {
  DiGraph a(2);
  a.add_edge(0, 1);
  DiGraph b(3);
  b.add_edge(0, 2);
  b.add_edge(1, 2);

  const NodeId offset = a.merge_disjoint(b);
  EXPECT_EQ(offset, 2U);
  EXPECT_EQ(a.node_count(), 5U);
  EXPECT_EQ(a.edge_count(), 3U);
  EXPECT_TRUE(a.has_edge(0, 1));
  EXPECT_TRUE(a.has_edge(offset + 0, offset + 2));
  EXPECT_TRUE(a.has_edge(offset + 1, offset + 2));
  EXPECT_FALSE(a.has_edge(1, offset + 0));
}

TEST(DiGraph, MergeDisjointPreservesDegrees) {
  DiGraph a(1);
  DiGraph b(2);
  b.add_edge(0, 1);
  const NodeId offset = a.merge_disjoint(b);
  EXPECT_EQ(a.out_degree(offset), 1U);
  EXPECT_EQ(a.in_degree(offset + 1), 1U);
}

}  // namespace
}  // namespace soteria::graph
