// The pre-fusion two-sweep centrality implementation, preserved
// verbatim as the reference oracle for the fused fast path in
// src/graph/centrality.cpp. The property test
// (centrality_fused_property_test.cpp) pins *exact* floating-point
// agreement between the two: every accumulator on both sides holds
// nonnegative integers until the final normalizing divisions, so the
// results must match bit for bit, not just approximately.
//
// Do not "improve" this file — its value is being the slow, obviously
// correct formulation (textbook Brandes with predecessor lists plus a
// separate all-sources BFS sweep for closeness).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "graph/digraph.h"
#include "graph/traversal.h"

namespace soteria::graph::naive {

// Undirected adjacency snapshot so each BFS avoids re-deduplicating.
inline std::vector<std::vector<NodeId>> undirected_adjacency(
    const DiGraph& g) {
  std::vector<std::vector<NodeId>> adj(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v)
    adj[v] = g.undirected_neighbors(v);
  return adj;
}

inline std::vector<double> betweenness_centrality(const DiGraph& g) {
  const std::size_t n = g.node_count();
  std::vector<double> betweenness(n, 0.0);
  if (n < 3) return betweenness;
  const auto adj = undirected_adjacency(g);

  // Brandes' accumulation (unweighted). Raw dependency scores first.
  std::vector<double> sigma(n);       // # shortest paths from s
  std::vector<double> delta(n);       // dependency of s on v
  std::vector<std::int64_t> dist(n);  // BFS distance, -1 = unseen
  std::vector<std::vector<NodeId>> preds(n);
  std::vector<NodeId> order;  // nodes in non-decreasing distance
  order.reserve(n);

  double total_pair_paths = 0.0;  // Delta(m): total shortest paths between
                                  // distinct unordered pairs

  for (NodeId s = 0; s < n; ++s) {
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    std::fill(dist.begin(), dist.end(), -1);
    for (auto& p : preds) p.clear();
    order.clear();

    sigma[s] = 1.0;
    dist[s] = 0;
    std::deque<NodeId> queue{s};
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      order.push_back(u);
      for (NodeId w : adj[u]) {
        if (dist[w] < 0) {
          dist[w] = dist[u] + 1;
          queue.push_back(w);
        }
        if (dist[w] == dist[u] + 1) {
          sigma[w] += sigma[u];
          preds[w].push_back(u);
        }
      }
    }

    for (NodeId t : order) {
      if (t != s) total_pair_paths += sigma[t];
    }

    // delta[v] accumulates c(v) = number of shortest-path continuations
    // from v to any strictly-downstream target in the BFS DAG; the number
    // of shortest s-t paths through v (summed over t) is sigma[v] * c(v).
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId w = *it;
      for (NodeId u : preds[w]) {
        delta[u] += 1.0 + delta[w];
      }
      if (w != s) betweenness[w] += delta[w] * sigma[w];
    }
  }

  // Each unordered pair was visited from both endpoints; halve both the
  // accumulated path counts and the normalizer, which cancels.
  if (total_pair_paths > 0.0) {
    for (double& b : betweenness) b /= total_pair_paths;
  }
  return betweenness;
}

inline std::vector<double> closeness_centrality(const DiGraph& g) {
  const std::size_t n = g.node_count();
  std::vector<double> closeness(n, 0.0);
  if (n < 2) return closeness;
  for (NodeId v = 0; v < n; ++v) {
    const auto dist = undirected_bfs_distances(g, v);
    double sum = 0.0;
    std::size_t reachable = 0;
    for (std::size_t d : dist) {
      if (d != kUnreachable && d > 0) {
        sum += static_cast<double>(d);
        ++reachable;
      }
    }
    if (sum > 0.0) closeness[v] = static_cast<double>(reachable) / sum;
  }
  return closeness;
}

inline std::vector<double> centrality_factor(const DiGraph& g) {
  // Qualified: ADL on DiGraph would otherwise also find the fused
  // soteria::graph overloads and make the calls ambiguous.
  auto cf = naive::betweenness_centrality(g);
  const auto close = naive::closeness_centrality(g);
  for (std::size_t i = 0; i < cf.size(); ++i) cf[i] += close[i];
  return cf;
}

}  // namespace soteria::graph::naive
