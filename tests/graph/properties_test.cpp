#include "graph/properties.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "math/rng.h"

namespace soteria::graph {
namespace {

TEST(Properties, DiamondCounts) {
  DiGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const auto p = graph_properties(g);
  EXPECT_EQ(p.node_count, 4U);
  EXPECT_EQ(p.edge_count, 4U);
  EXPECT_DOUBLE_EQ(p.density, 4.0 / 12.0);
  EXPECT_EQ(p.leaf_count, 1U);    // node 3
  EXPECT_EQ(p.branch_count, 1U);  // node 0
  EXPECT_EQ(p.diameter, 2U);
  EXPECT_EQ(p.loop_edge_count, 0U);
  EXPECT_DOUBLE_EQ(p.mean_degree, 2.0);
}

TEST(Properties, LoopEdgesDetected) {
  DiGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);  // closes the cycle
  const auto p = graph_properties(g);
  // Every edge of a 3-cycle participates in a cycle.
  EXPECT_EQ(p.loop_edge_count, 3U);
}

TEST(Properties, SelfLoopCounts) {
  DiGraph g(2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  const auto p = graph_properties(g);
  EXPECT_EQ(p.loop_edge_count, 1U);
}

TEST(Properties, EmptyAndSingletonGraphs) {
  const auto empty = graph_properties(DiGraph{});
  EXPECT_EQ(empty.node_count, 0U);
  EXPECT_DOUBLE_EQ(empty.density, 0.0);

  const auto one = graph_properties(DiGraph(1));
  EXPECT_EQ(one.node_count, 1U);
  EXPECT_EQ(one.leaf_count, 1U);
  EXPECT_DOUBLE_EQ(one.mean_shortest_path, 0.0);
}

TEST(Properties, MeanShortestPathOnChain) {
  math::Rng rng(1);
  const auto g = chain_graph(4, 0, rng);
  const auto p = graph_properties(g);
  // Directed pairs: 01,02,03,12,13,23 -> dists 1,2,3,1,2,1 = 10/6.
  EXPECT_NEAR(p.mean_shortest_path, 10.0 / 6.0, 1e-9);
  EXPECT_EQ(p.diameter, 3U);
}

TEST(Properties, FeatureVectorHasDocumentedLayout) {
  DiGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  const auto p = graph_properties(g);
  const auto v = to_feature_vector(p);
  ASSERT_EQ(v.size(), kGraphFeatureCount);
  EXPECT_FLOAT_EQ(v[0], 3.0F);  // node count
  EXPECT_FLOAT_EQ(v[1], 2.0F);  // edge count
  EXPECT_FLOAT_EQ(v[12], 2.0F);  // leaves
  EXPECT_FLOAT_EQ(v[13], 1.0F);  // branch nodes
}

TEST(Properties, DegreeStatsOnStar) {
  DiGraph g(5);
  for (NodeId v = 1; v < 5; ++v) g.add_edge(0, v);
  const auto p = graph_properties(g);
  EXPECT_DOUBLE_EQ(p.max_degree, 4.0);
  EXPECT_DOUBLE_EQ(p.mean_degree, 8.0 / 5.0);
  EXPECT_GT(p.degree_stddev, 0.0);
  EXPECT_GT(p.max_betweenness, 0.0);
  EXPECT_GT(p.max_closeness, 0.0);
}

}  // namespace
}  // namespace soteria::graph
