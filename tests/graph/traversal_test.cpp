#include "graph/traversal.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "math/rng.h"

namespace soteria::graph {
namespace {

DiGraph diamond() {
  // 0 -> {1, 2} -> 3
  DiGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(Traversal, BfsDistancesOnDiamond) {
  const auto dist = bfs_distances(diamond(), 0);
  EXPECT_EQ(dist[0], 0U);
  EXPECT_EQ(dist[1], 1U);
  EXPECT_EQ(dist[2], 1U);
  EXPECT_EQ(dist[3], 2U);
}

TEST(Traversal, BfsRespectsDirection) {
  const auto dist = bfs_distances(diamond(), 3);
  EXPECT_EQ(dist[3], 0U);
  EXPECT_EQ(dist[0], kUnreachable);
  EXPECT_EQ(dist[1], kUnreachable);
}

TEST(Traversal, UndirectedBfsIgnoresDirection) {
  const auto dist = undirected_bfs_distances(diamond(), 3);
  EXPECT_EQ(dist[0], 2U);
  EXPECT_EQ(dist[1], 1U);
}

TEST(Traversal, BfsThrowsOnBadSource) {
  EXPECT_THROW((void)bfs_distances(diamond(), 4), std::out_of_range);
}

TEST(Traversal, NodeLevelsAreOneBased) {
  const auto levels = node_levels(diamond(), 0);
  EXPECT_EQ(levels[0], 1U);  // entry is level 1 (paper definition)
  EXPECT_EQ(levels[1], 2U);
  EXPECT_EQ(levels[3], 3U);
}

TEST(Traversal, NodeLevelsMarkUnreachable) {
  DiGraph g(3);
  g.add_edge(0, 1);
  const auto levels = node_levels(g, 0);
  EXPECT_EQ(levels[2], kUnreachable);
}

TEST(Traversal, ReachableFrom) {
  DiGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);  // island
  const auto reach = reachable_from(g, 0);
  EXPECT_TRUE(reach[0]);
  EXPECT_TRUE(reach[1]);
  EXPECT_FALSE(reach[2]);
  EXPECT_FALSE(reach[3]);
}

TEST(Traversal, WeakConnectivity) {
  EXPECT_TRUE(is_weakly_connected(diamond()));
  EXPECT_TRUE(is_weakly_connected(DiGraph{}));
  EXPECT_TRUE(is_weakly_connected(DiGraph(1)));
  DiGraph split(2);
  EXPECT_FALSE(is_weakly_connected(split));
}

TEST(Traversal, DirectedDiameter) {
  EXPECT_EQ(directed_diameter(diamond()), 2U);
  math::Rng rng(1);
  const auto chain = chain_graph(6, 0, rng);
  EXPECT_EQ(directed_diameter(chain), 5U);
  EXPECT_EQ(directed_diameter(DiGraph(1)), 0U);
}

TEST(Generators, ChainGraphShape) {
  math::Rng rng(1);
  const auto g = chain_graph(5, 0, rng);
  EXPECT_EQ(g.node_count(), 5U);
  EXPECT_EQ(g.edge_count(), 4U);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(Generators, ChainGraphBackEdgesStayBackward) {
  math::Rng rng(2);
  const auto g = chain_graph(10, 5, rng);
  for (const auto& [u, v] : g.edges()) {
    if (v != u + 1) EXPECT_LT(v, u);
  }
}

TEST(Generators, RandomGraphIsEntryConnected) {
  math::Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = random_connected_dag_plus(30, 0.05, rng);
    const auto reach = reachable_from(g, 0);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_TRUE(reach[v]) << "node " << v << " unreachable";
    }
  }
}

TEST(Generators, RandomGraphValidation) {
  math::Rng rng(4);
  EXPECT_THROW((void)random_connected_dag_plus(0, 0.1, rng),
               std::invalid_argument);
  EXPECT_THROW((void)random_connected_dag_plus(5, 1.5, rng),
               std::invalid_argument);
  EXPECT_THROW((void)chain_graph(0, 0, rng), std::invalid_argument);
}

TEST(Generators, BinaryTreeShape) {
  const auto g = binary_tree(3);
  EXPECT_EQ(g.node_count(), 15U);
  EXPECT_EQ(g.edge_count(), 14U);
  EXPECT_EQ(g.out_degree(0), 2U);
  EXPECT_EQ(g.out_degree(7), 0U);  // leaf
  const auto levels = node_levels(g, 0);
  EXPECT_EQ(levels[14], 4U);
}

TEST(Generators, CompleteDigraph) {
  const auto g = complete_digraph(4);
  EXPECT_EQ(g.edge_count(), 12U);
  EXPECT_EQ(directed_diameter(g), 1U);
}

}  // namespace
}  // namespace soteria::graph
