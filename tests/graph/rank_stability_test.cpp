// Rank-stability property suite for the sampled-pivot approximate
// centrality path (graph/centrality.h).
//
// Soteria's DBL labeling consumes centrality *rankings*, so the
// approximation's acceptance question is rank-level agreement with the
// exact sweep, not raw-score equality: Spearman correlation and top-k
// overlap over the centrality factor, and end-to-end DBL/LBL label
// agreement through cfg::node_ranks / labels_from_ranks. The suite
// also pins the properties that make the approximation *trustworthy*:
// the Hoeffding/union error bound round-trips and detects
// under-sampled configurations, a full pivot set reproduces the exact
// sweep bit for bit, and the pivot draw is deterministic per seed,
// seed-sensitive, and bit-identical at every thread count.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cfg/cfg.h"
#include "cfg/labeling.h"
#include "graph/centrality.h"
#include "graph/generators.h"
#include "graph/rank_agreement.h"
#include "math/rng.h"

namespace soteria::graph {
namespace {

// The firmware-scale cases are exact-sweep-bound (seconds in a Release
// build); sanitizer builds multiply that several-fold, so those cases
// skip there — the scaled-down shapes cover the same properties.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

[[nodiscard]] std::vector<double> centrality_factor_of(
    const CentralityScores& scores) {
  std::vector<double> cf = scores.betweenness;
  for (std::size_t i = 0; i < cf.size(); ++i) cf[i] += scores.closeness[i];
  return cf;
}

[[nodiscard]] std::vector<double> as_doubles(
    const std::vector<cfg::Label>& labels) {
  return {labels.begin(), labels.end()};
}

// Two weakly-connected components, so sampled pivots must serve both.
[[nodiscard]] DiGraph disconnected_graph(std::size_t n, math::Rng& rng) {
  DiGraph g = random_connected_dag_plus(n / 2, 0.02, rng);
  g.merge_disjoint(random_connected_dag_plus(n - n / 2, 0.02, rng));
  return g;
}

struct Shape {
  std::string name;
  DiGraph graph;
  // Per-shape agreement floors. The additive error bound is uniform,
  // but how much rank order it buys depends on how spread the true
  // scores are: the disconnected shape glues two flat random halves
  // whose closeness values cluster tightly, so small absolute errors
  // shuffle ranks near the top-k boundary and its floors sit lower.
  double default_rho = 0.95;
  double default_top_k = 0.8;
  double subsampled_rho = 0.7;
  double subsampled_top_k = 0.5;
};

// The four graph classes under test: random, scale-free, disconnected,
// firmware-shaped. Sized so the default pivot count samples a real
// fraction (~1/3) of the nodes, not nearly all of them.
[[nodiscard]] std::vector<Shape> agreement_shapes() {
  math::Rng rng(7031);
  std::vector<Shape> shapes;
  shapes.push_back({"random", random_connected_dag_plus(2000, 0.004, rng)});
  shapes.push_back({"scale_free", scale_free_digraph(2000, 3, rng)});
  shapes.push_back(
      {"disconnected", disconnected_graph(2000, rng), 0.9, 0.6, 0.45, 0.25});
  shapes.push_back({"firmware", firmware_like_cfg(2000, rng)});
  return shapes;
}

[[nodiscard]] CentralityOptions approx_options(std::size_t pivot_count,
                                               std::uint64_t seed = 0x536f) {
  CentralityOptions options;
  options.approximate = true;
  options.approx.pivot_count = pivot_count;
  options.approx.seed = seed;
  return options;
}

TEST(RankStability, PivotCountBoundRoundTripsAndDetectsUnderSampling) {
  for (const std::size_t n : {100UL, 10'000UL, 50'000UL}) {
    for (const double epsilon : {0.05, 0.1, 0.2}) {
      const std::size_t r = riondato_pivot_count(n, epsilon, 0.01);
      // The pivot count buys at least the error it was sized for...
      EXPECT_LE(approx_error_bound(n, r, 0.01), epsilon + 1e-12)
          << "n=" << n << " epsilon=" << epsilon;
      // ...and one fewer pivot provably does not: an under-sampled
      // configuration is detected by the same bound.
      ASSERT_GT(r, 1U);
      EXPECT_GT(approx_error_bound(n, r - 1, 0.01), epsilon)
          << "n=" << n << " epsilon=" << epsilon;
    }
  }
  EXPECT_THROW((void)riondato_pivot_count(100, 0.0, 0.01),
               std::invalid_argument);
  EXPECT_THROW((void)riondato_pivot_count(100, 1.0, 0.01),
               std::invalid_argument);
  EXPECT_THROW((void)riondato_pivot_count(100, 0.1, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)approx_error_bound(100, 0, 0.01),
               std::invalid_argument);
}

TEST(RankStability, MeasuredBetweennessErrorStaysWithinTheBound) {
  math::Rng rng(411);
  const DiGraph g = firmware_like_cfg(600, rng);
  const std::size_t n = g.node_count();
  const auto exact = centrality_scores(g);

  const double epsilon = 0.2;
  const double delta = 0.1;
  const std::size_t r = riondato_pivot_count(n, epsilon, delta);
  ASSERT_LT(r, n);
  auto options = approx_options(r);
  const auto approx = centrality_scores(g, options);

  double max_error = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    max_error = std::max(
        max_error, std::abs(exact.betweenness[v] - approx.betweenness[v]));
  }
  EXPECT_LE(max_error, approx_error_bound(n, r, delta))
      << "max additive betweenness error " << max_error << " with " << r
      << " pivots";
}

TEST(RankStability, FullPivotSetReproducesExactBitForBit) {
  math::Rng rng(929);
  std::vector<Shape> shapes = agreement_shapes();
  shapes.push_back({"chain", chain_graph(64, 8, rng)});
  shapes.push_back({"complete", complete_digraph(32)});
  for (const auto& shape : shapes) {
    SCOPED_TRACE(shape.name);
    const std::size_t n = shape.graph.node_count();
    EXPECT_EQ(resolved_pivot_count(n, approx_options(n).approx), n);
    EXPECT_EQ(pivot_nodes(shape.graph, approx_options(n).approx).size(), n);

    const auto exact = centrality_scores(shape.graph);
    const auto full = centrality_scores(shape.graph, approx_options(n));
    // Bitwise: integer-exact accumulators and symmetric distances make
    // the estimators *equal* the exact formulas at a full pivot set.
    EXPECT_EQ(exact.betweenness, full.betweenness);
    EXPECT_EQ(exact.closeness, full.closeness);
  }
}

TEST(RankStability, PivotDrawIsDeterministicAndSeedSensitive) {
  math::Rng rng(5150);
  const DiGraph g = firmware_like_cfg(500, rng);
  const auto options = approx_options(100, 11);
  const auto pivots_a = pivot_nodes(g, options.approx);
  const auto pivots_b = pivot_nodes(g, options.approx);
  EXPECT_EQ(pivots_a, pivots_b);
  EXPECT_EQ(pivots_a.size(), 100U);
  EXPECT_TRUE(std::is_sorted(pivots_a.begin(), pivots_a.end()));

  auto reseeded = options;
  reseeded.approx.seed = 12;
  EXPECT_NE(pivot_nodes(g, reseeded.approx), pivots_a)
      << "a different seed must draw a different pivot sample";

  // Same seed => same scores, run over run.
  const auto scores_a = centrality_scores(g, options);
  const auto scores_b = centrality_scores(g, options);
  EXPECT_EQ(scores_a.betweenness, scores_b.betweenness);
  EXPECT_EQ(scores_a.closeness, scores_b.closeness);
}

TEST(RankStability, ApproxScoresBitIdenticalAcrossThreadCounts) {
  math::Rng rng(808);
  const DiGraph g = firmware_like_cfg(800, rng);
  auto options = approx_options(200);
  options.num_threads = 1;
  const auto baseline = centrality_scores(g, options);
  for (const std::size_t threads : {2UL, 4UL, 8UL}) {
    options.num_threads = threads;
    const auto scores = centrality_scores(g, options);
    EXPECT_EQ(scores.betweenness, baseline.betweenness)
        << threads << " threads";
    EXPECT_EQ(scores.closeness, baseline.closeness) << threads << " threads";
  }
}

TEST(RankStability, PivotPrioritiesAreEquivariantUnderNodePermutation) {
  math::Rng rng(2718);
  const std::uint64_t seed = 0xfeed;

  // Priority equivariance holds for *every* graph: permute the nodes,
  // and each node carries its priority along.
  bool checked_distinct = false;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const DiGraph g = random_connected_dag_plus(300, 0.04, rng);
    const std::size_t n = g.node_count();
    SCOPED_TRACE("attempt " + std::to_string(attempt));

    // pi maps old node id -> new node id; entry stays 0 for realism.
    auto perm = rng.permutation(n - 1);
    std::vector<NodeId> pi(n);
    for (std::size_t i = 0; i + 1 < n; ++i) pi[i + 1] = perm[i] + 1;
    DiGraph permuted(n);
    for (const auto& [u, v] : g.edges()) permuted.add_edge(pi[u], pi[v]);

    const auto priorities = pivot_priorities(g, seed);
    const auto permuted_priorities = pivot_priorities(permuted, seed);
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_EQ(permuted_priorities[pi[v]], priorities[v]) << "node " << v;
    }

    // When the priorities separate every node, the pivot *set* maps
    // through the permutation too — the property the approximate
    // labeling permutation test builds on. Graphs with automorphic
    // nodes (e.g. the twin leaves of firmware chain bodies) can tie,
    // so run this half on the first shape whose signatures are
    // all distinct.
    auto sorted = priorities;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      continue;
    }
    checked_distinct = true;
    const auto pivots = pivot_nodes(g, approx_options(80, seed).approx);
    auto mapped = pivots;
    for (auto& v : mapped) v = pi[v];
    std::sort(mapped.begin(), mapped.end());
    EXPECT_EQ(pivot_nodes(permuted, approx_options(80, seed).approx),
              mapped);
    break;
  }
  ASSERT_TRUE(checked_distinct)
      << "no candidate shape had fully distinct signatures";
}

TEST(RankStability, RankAgreementAcrossGraphClasses) {
  for (const auto& shape : agreement_shapes()) {
    SCOPED_TRACE(shape.name);
    const std::size_t n = shape.graph.node_count();
    const auto exact = centrality_scores(shape.graph);
    const auto cf_exact = centrality_factor_of(exact);

    // Default parameters — the configuration that actually ships.
    const std::size_t default_pivots =
        resolved_pivot_count(n, ApproxCentralityOptions{});
    ASSERT_LT(default_pivots, n) << "shape too small to sample";
    {
      CentralityOptions options;
      options.approximate = true;
      const auto cf_approx =
          centrality_factor_of(centrality_scores(shape.graph, options));
      const double rho = spearman(cf_exact, cf_approx);
      const double top_k = top_k_overlap(cf_exact, cf_approx, n / 10);
      RecordProperty("default_spearman_" + shape.name, std::to_string(rho));
      RecordProperty("default_top_k_" + shape.name, std::to_string(top_k));
      EXPECT_GE(rho, shape.default_rho)
          << "CF Spearman on " << shape.name << ": " << rho;
      EXPECT_GE(top_k, shape.default_top_k)
          << "CF top-10% overlap on " << shape.name << ": " << top_k;
    }

    // Aggressive sub-sampling (an eighth of the default pivot budget):
    // agreement degrades gracefully, it does not collapse. These
    // looser floors document the trade-off, not the shipped quality.
    {
      const auto cf_approx = centrality_factor_of(centrality_scores(
          shape.graph, approx_options(default_pivots / 8)));
      const double rho = spearman(cf_exact, cf_approx);
      const double top_k = top_k_overlap(cf_exact, cf_approx, n / 10);
      RecordProperty("subsampled_spearman_" + shape.name,
                     std::to_string(rho));
      RecordProperty("subsampled_top_k_" + shape.name,
                     std::to_string(top_k));
      EXPECT_GE(rho, shape.subsampled_rho)
          << "sub-sampled CF Spearman on " << shape.name << ": " << rho;
      EXPECT_GE(top_k, shape.subsampled_top_k)
          << "sub-sampled CF top-10% overlap on " << shape.name << ": "
          << top_k;
    }
  }
}

TEST(RankStability, LabelAgreementEndToEndThroughLabelBoth) {
  math::Rng rng(31337);
  const cfg::Cfg sample(firmware_like_cfg(2000, rng), 0);

  cfg::LabelingOptions options;
  options.approx_centrality_threshold = 1;  // approximate at any size
  ASSERT_TRUE(cfg::approximate_labeling(options, sample.node_count()));

  const auto exact = cfg::label_both(sample);
  const auto approx = cfg::label_both(sample, options);
  const double dbl_rho =
      spearman(as_doubles(exact.dbl), as_doubles(approx.dbl));
  const double lbl_rho =
      spearman(as_doubles(exact.lbl), as_doubles(approx.lbl));
  RecordProperty("dbl_spearman", std::to_string(dbl_rho));
  RecordProperty("lbl_spearman", std::to_string(lbl_rho));
  EXPECT_GE(dbl_rho, 0.99) << "DBL label Spearman: " << dbl_rho;
  EXPECT_GE(lbl_rho, 0.99) << "LBL label Spearman: " << lbl_rho;
}

// The headline acceptance case: a firmware-scale CFG at n = 10,000
// under the *default* approximation parameters, against one exact
// sweep. The >= 5x wall-clock gain is asserted (fail-loud) by
// bench/perf_graph; here the sweep-count ratio and the rank agreements
// are pinned.
TEST(RankStability, FirmwareScaleHeadlineAgreement) {
  if (kSanitized) {
    GTEST_SKIP() << "exact n=10,000 sweep is too slow under sanitizers";
  }
  math::Rng rng(90210);
  const cfg::Cfg sample(firmware_like_cfg(10'000, rng), 0);
  const std::size_t n = sample.node_count();

  cfg::LabelingOptions options;
  options.approx_centrality_threshold = 10'000;
  ASSERT_TRUE(cfg::approximate_labeling(options, n));
  const std::size_t pivots = resolved_pivot_count(n, options.approx);
  // The sweep-count ratio backs the >= 5x wall-clock acceptance: the
  // approximation must do at most a fifth of the exact source sweeps.
  EXPECT_LE(pivots * 5, n) << pivots << " pivots for n=" << n;

  const auto ranks_exact = cfg::node_ranks(sample);
  const auto ranks_approx = cfg::node_ranks(sample, options);
  ASSERT_EQ(ranks_exact.size(), n);
  ASSERT_EQ(ranks_approx.size(), n);

  std::vector<double> cf_exact(n);
  std::vector<double> cf_approx(n);
  for (std::size_t v = 0; v < n; ++v) {
    cf_exact[v] = ranks_exact[v].centrality_factor;
    cf_approx[v] = ranks_approx[v].centrality_factor;
    // Density and level are centrality-independent: identical.
    ASSERT_EQ(ranks_exact[v].density, ranks_approx[v].density);
    ASSERT_EQ(ranks_exact[v].level, ranks_approx[v].level);
  }
  const double top_k = top_k_overlap(cf_exact, cf_approx, n / 10);
  RecordProperty("headline_top_k", std::to_string(top_k));
  EXPECT_GE(top_k, 0.95) << "CF top-10% overlap at n=10,000: " << top_k;

  const auto dbl_exact =
      cfg::labels_from_ranks(ranks_exact, cfg::LabelingMethod::kDensity);
  const auto dbl_approx =
      cfg::labels_from_ranks(ranks_approx, cfg::LabelingMethod::kDensity);
  const auto lbl_exact =
      cfg::labels_from_ranks(ranks_exact, cfg::LabelingMethod::kLevel);
  const auto lbl_approx =
      cfg::labels_from_ranks(ranks_approx, cfg::LabelingMethod::kLevel);
  const double dbl_rho =
      spearman(as_doubles(dbl_exact), as_doubles(dbl_approx));
  const double lbl_rho =
      spearman(as_doubles(lbl_exact), as_doubles(lbl_approx));
  RecordProperty("headline_dbl_spearman", std::to_string(dbl_rho));
  RecordProperty("headline_lbl_spearman", std::to_string(lbl_rho));
  EXPECT_GE(dbl_rho, 0.99) << "DBL label Spearman at n=10,000: " << dbl_rho;
  EXPECT_GE(lbl_rho, 0.99) << "LBL label Spearman at n=10,000: " << lbl_rho;
}

}  // namespace
}  // namespace soteria::graph
