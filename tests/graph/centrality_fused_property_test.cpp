// Property tests pinning the fused single-pass centrality
// (src/graph/centrality.cpp) to the preserved naive two-sweep
// reference (naive_centrality.h). Agreement is asserted with
// EXPECT_EQ on doubles — both formulations accumulate only integers
// until the final divisions, so they must match exactly, and so must
// every thread count of the parallel variant.
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "graph/centrality.h"
#include "graph/generators.h"
#include "math/rng.h"
#include "naive_centrality.h"

namespace soteria::graph {
namespace {

void expect_exact_match(const DiGraph& g) {
  const auto fused = centrality_scores(g);
  const auto naive_b = naive::betweenness_centrality(g);
  const auto naive_c = naive::closeness_centrality(g);
  ASSERT_EQ(fused.betweenness.size(), g.node_count());
  ASSERT_EQ(fused.closeness.size(), g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    // Exact, not near: see header comment.
    EXPECT_EQ(fused.betweenness[v], naive_b[v]) << "node " << v;
    EXPECT_EQ(fused.closeness[v], naive_c[v]) << "node " << v;
  }
  // The public wrappers and the factor go through the same fused pass.
  EXPECT_EQ(betweenness_centrality(g), naive_b);
  EXPECT_EQ(closeness_centrality(g), naive_c);
  EXPECT_EQ(centrality_factor(g), naive::centrality_factor(g));
}

void expect_thread_invariance(const DiGraph& g) {
  const auto serial = centrality_scores(g, 1);
  for (std::size_t threads : {2, 4, 8}) {
    const auto parallel = centrality_scores(g, threads);
    EXPECT_EQ(parallel.betweenness, serial.betweenness)
        << "threads=" << threads;
    EXPECT_EQ(parallel.closeness, serial.closeness)
        << "threads=" << threads;
  }
}

TEST(FusedCentralityProperty, RandomConnectedDigraphs) {
  math::Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 62));
    const double p = rng.uniform(0.02, 0.22);
    const auto g = random_connected_dag_plus(n, p, rng);
    expect_exact_match(g);
  }
}

TEST(FusedCentralityProperty, ChainsTreesAndCliques) {
  math::Rng rng(77);
  expect_exact_match(chain_graph(17, 3, rng));
  expect_exact_match(binary_tree(5));
  expect_exact_match(complete_digraph(9));
}

TEST(FusedCentralityProperty, DisconnectedComponents) {
  // Two components of different diameters plus an isolated node: the
  // per-source BFS only reaches its own component, so closeness and
  // the pair-path normalizer see partial reachability.
  DiGraph g(8);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);  // component {0,1,2,3}: a path
  g.add_edge(4, 5);
  g.add_edge(5, 6);
  g.add_edge(4, 6);  // component {4,5,6}: a triangle
  // node 7 isolated
  expect_exact_match(g);
  expect_thread_invariance(g);
}

TEST(FusedCentralityProperty, SelfLoops) {
  // Self loops are ignored by the undirected view (a node is not its
  // own neighbor) — both formulations must agree on that.
  DiGraph g(5);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 3);
  g.add_edge(3, 4);
  expect_exact_match(g);
}

TEST(FusedCentralityProperty, ParallelEdgesCollapse) {
  // Duplicate and anti-parallel edges collapse to one undirected edge.
  DiGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 1);
  g.add_edge(2, 3);
  expect_exact_match(g);
}

TEST(FusedCentralityProperty, DegenerateSizes) {
  expect_exact_match(DiGraph(0));
  expect_exact_match(DiGraph(1));
  DiGraph lonely(1);
  lonely.add_edge(0, 0);
  expect_exact_match(lonely);
  DiGraph pair(2);
  pair.add_edge(0, 1);
  expect_exact_match(pair);  // n == 2: betweenness all zero by definition
  expect_exact_match(DiGraph(3));  // edgeless
}

TEST(FusedCentralityProperty, ThreadCountInvariance) {
  math::Rng rng(4321);
  for (int trial = 0; trial < 6; ++trial) {
    // Large enough that the parallel path actually engages (the
    // implementation falls back to serial below one source chunk).
    const auto n = static_cast<std::size_t>(rng.uniform_int(80, 200));
    const auto g = random_connected_dag_plus(n, 0.05, rng);
    expect_thread_invariance(g);
  }
}

TEST(FusedCentralityProperty, ParallelMatchesNaiveOnLargeGraph) {
  math::Rng rng(99);
  const auto g = random_connected_dag_plus(150, 0.04, rng);
  const auto fused = centrality_scores(g, 4);
  EXPECT_EQ(fused.betweenness, naive::betweenness_centrality(g));
  EXPECT_EQ(fused.closeness, naive::closeness_centrality(g));
}

}  // namespace
}  // namespace soteria::graph
