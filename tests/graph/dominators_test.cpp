#include "graph/dominators.h"

#include <gtest/gtest.h>

#include "cfg/extractor.h"
#include "dataset/family_profiles.h"
#include "graph/generators.h"
#include "isa/codegen.h"
#include "math/rng.h"

namespace soteria::graph {
namespace {

// 0 -> {1, 2} -> 3 -> 4 with back edge 4 -> 3.
DiGraph diamond_with_loop() {
  DiGraph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 3);
  return g;
}

TEST(Dominators, DiamondJoinIsDominatedByFork) {
  const auto idom = immediate_dominators(diamond_with_loop(), 0);
  EXPECT_EQ(idom[0], 0U);  // entry dominates itself
  EXPECT_EQ(idom[1], 0U);
  EXPECT_EQ(idom[2], 0U);
  EXPECT_EQ(idom[3], 0U);  // join is dominated by the fork, not a branch
  EXPECT_EQ(idom[4], 3U);
}

TEST(Dominators, ChainIsLinear) {
  math::Rng rng(1);
  const auto g = chain_graph(5, 0, rng);
  const auto idom = immediate_dominators(g, 0);
  for (NodeId v = 1; v < 5; ++v) EXPECT_EQ(idom[v], v - 1);
}

TEST(Dominators, UnreachableNodesHaveNoDominator) {
  DiGraph g(3);
  g.add_edge(0, 1);
  const auto idom = immediate_dominators(g, 0);
  EXPECT_EQ(idom[2], kNoDominator);
  EXPECT_FALSE(dominates(idom, 0, 2));
}

TEST(Dominators, DominatesIsReflexiveAndChains) {
  const auto idom = immediate_dominators(diamond_with_loop(), 0);
  EXPECT_TRUE(dominates(idom, 3, 3));
  EXPECT_TRUE(dominates(idom, 0, 4));
  EXPECT_TRUE(dominates(idom, 3, 4));
  EXPECT_FALSE(dominates(idom, 1, 3));  // other branch exists
  EXPECT_FALSE(dominates(idom, 4, 3));
  EXPECT_THROW((void)dominates(idom, 9, 0), std::out_of_range);
}

TEST(Dominators, Validation) {
  EXPECT_THROW((void)immediate_dominators(DiGraph{}, 0),
               std::invalid_argument);
  EXPECT_THROW((void)immediate_dominators(DiGraph(2), 5),
               std::out_of_range);
}

TEST(NaturalLoops, FindsSelfLoop) {
  DiGraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 1);
  const auto loops = natural_loops(g, 0);
  ASSERT_EQ(loops.size(), 1U);
  EXPECT_EQ(loops[0].header, 1U);
  EXPECT_EQ(loops[0].body, (std::vector<NodeId>{1}));
}

TEST(NaturalLoops, FindsWhileLoopBody) {
  const auto loops = natural_loops(diamond_with_loop(), 0);
  ASSERT_EQ(loops.size(), 1U);
  EXPECT_EQ(loops[0].header, 3U);
  EXPECT_EQ(loops[0].body, (std::vector<NodeId>{3, 4}));
}

TEST(NaturalLoops, AcyclicGraphHasNone) {
  const auto tree = binary_tree(3);
  EXPECT_TRUE(natural_loops(tree, 0).empty());
}

TEST(NaturalLoops, NestedLoopsReportBoth) {
  // 0 -> 1 -> 2 -> 1 (inner), 2 -> 3 -> 0? use header-dominated outer:
  // 0 -> 1 -> 2; 2 -> 1 (inner back edge); 2 -> 3; 3 -> 1? 1 dominates 3
  // -> that is a second loop with the same header. Build a clean
  // two-level nest instead: 0->1->2->3, 3->2 (inner), 3->1 (outer).
  DiGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  g.add_edge(3, 1);
  const auto loops = natural_loops(g, 0);
  ASSERT_EQ(loops.size(), 2U);
  EXPECT_EQ(loops[0].header, 1U);
  EXPECT_EQ(loops[0].body, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(loops[1].header, 2U);
  EXPECT_EQ(loops[1].body, (std::vector<NodeId>{2, 3}));
}

TEST(NaturalLoops, GeneratedFirmwareLoopsHaveDominatedHeaders) {
  // Property over real generated CFGs: every reported loop's header
  // dominates its entire body.
  math::Rng rng(7);
  for (auto family :
       {dataset::Family::kMirai, dataset::Family::kBenign}) {
    const auto binary =
        isa::generate_binary(dataset::profile_for(family), rng);
    const auto cfg = cfg::extract(binary);
    const auto idom = immediate_dominators(cfg.graph(), cfg.entry());
    const auto loops = natural_loops(cfg.graph(), cfg.entry());
    for (const auto& loop : loops) {
      for (NodeId v : loop.body) {
        EXPECT_TRUE(dominates(idom, loop.header, v));
      }
    }
    // Mirai's profile is loop-heavy; benign less so, but generated
    // while-loops guarantee at least one loop in most programs. Only
    // assert non-crash + the property above for robustness.
  }
}

}  // namespace
}  // namespace soteria::graph
