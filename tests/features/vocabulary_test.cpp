#include "features/vocabulary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace soteria::features {
namespace {

GramCounts make_counts(
    std::initializer_list<std::pair<std::vector<cfg::Label>, std::uint32_t>>
        entries) {
  GramCounts counts;
  for (const auto& [labels, count] : entries) {
    counts[pack_gram(labels)] = count;
  }
  return counts;
}

TEST(Vocabulary, SelectsTopKByTotalFrequency) {
  std::vector<GramCounts> corpus{
      make_counts({{{1, 2}, 10}, {{2, 3}, 5}, {{3, 4}, 1}}),
      make_counts({{{1, 2}, 10}, {{2, 3}, 5}}),
  };
  const auto vocab = Vocabulary::build(corpus, 2);
  EXPECT_EQ(vocab.size(), 2U);
  EXPECT_TRUE(vocab.index_of(pack_gram(std::vector<cfg::Label>{1, 2}))
                  .has_value());
  EXPECT_TRUE(vocab.index_of(pack_gram(std::vector<cfg::Label>{2, 3}))
                  .has_value());
  EXPECT_FALSE(vocab.index_of(pack_gram(std::vector<cfg::Label>{3, 4}))
                   .has_value());
  // Most frequent gram gets index 0.
  EXPECT_EQ(*vocab.index_of(pack_gram(std::vector<cfg::Label>{1, 2})), 0U);
  EXPECT_EQ(vocab.frequencies()[0], 20U);
}

TEST(Vocabulary, KeepsFewerWhenCorpusIsSmall) {
  std::vector<GramCounts> corpus{make_counts({{{1, 2}, 3}})};
  const auto vocab = Vocabulary::build(corpus, 500);
  EXPECT_EQ(vocab.size(), 1U);
}

TEST(Vocabulary, TieBrokenByKeyForDeterminism) {
  std::vector<GramCounts> corpus{
      make_counts({{{5, 5}, 4}, {{1, 1}, 4}, {{9, 9}, 4}})};
  const auto a = Vocabulary::build(corpus, 2);
  const auto b = Vocabulary::build(corpus, 2);
  EXPECT_EQ(a.grams(), b.grams());
  // Lower key wins the tie.
  EXPECT_EQ(a.grams()[0], pack_gram(std::vector<cfg::Label>{1, 1}));
}

TEST(Vocabulary, BuildValidation) {
  EXPECT_THROW((void)Vocabulary::build({}, 10), std::invalid_argument);
  std::vector<GramCounts> corpus{make_counts({{{1, 2}, 1}})};
  EXPECT_THROW((void)Vocabulary::build(corpus, 0), std::invalid_argument);
}

TEST(Vocabulary, IdfIsSmoothedLog) {
  // Gram A in both docs, gram B in one of two docs.
  std::vector<GramCounts> corpus{
      make_counts({{{1, 2}, 5}, {{2, 3}, 1}}),
      make_counts({{{1, 2}, 5}}),
  };
  const auto vocab = Vocabulary::build(corpus, 2);
  const auto idx_a = *vocab.index_of(pack_gram(std::vector<cfg::Label>{1, 2}));
  const auto idx_b = *vocab.index_of(pack_gram(std::vector<cfg::Label>{2, 3}));
  EXPECT_NEAR(vocab.idf()[idx_a], std::log(3.0 / 3.0) + 1.0, 1e-12);
  EXPECT_NEAR(vocab.idf()[idx_b], std::log(3.0 / 2.0) + 1.0, 1e-12);
  EXPECT_GT(vocab.idf()[idx_b], vocab.idf()[idx_a]);  // rarer = heavier
}

TEST(Vocabulary, TfidfVectorIsUnitNorm) {
  std::vector<GramCounts> corpus{
      make_counts({{{1, 2}, 5}, {{2, 3}, 3}, {{3, 4}, 2}})};
  const auto vocab = Vocabulary::build(corpus, 3);
  const auto vec = vocab.tfidf_vector(corpus[0]);
  ASSERT_EQ(vec.size(), 3U);
  double norm = 0.0;
  for (float x : vec) norm += static_cast<double>(x) * x;
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-5);
}

TEST(Vocabulary, TfidfWithoutNormalizationKeepsMassFraction) {
  std::vector<GramCounts> corpus{make_counts({{{1, 2}, 1}})};
  const auto vocab = Vocabulary::build(corpus, 1);
  // Sample where the vocab gram is only half the mass.
  const auto sample = make_counts({{{1, 2}, 2}, {{7, 7}, 2}});
  const auto vec = vocab.tfidf_vector(sample, /*l2_normalize=*/false);
  // tf = 2/4, idf = ln(2/2)+1 = 1.
  EXPECT_NEAR(vec[0], 0.5F, 1e-6);
}

TEST(Vocabulary, TfidfOfEmptyCountsIsZero) {
  std::vector<GramCounts> corpus{make_counts({{{1, 2}, 1}})};
  const auto vocab = Vocabulary::build(corpus, 1);
  const auto vec = vocab.tfidf_vector(GramCounts{});
  EXPECT_FLOAT_EQ(vec[0], 0.0F);
}

TEST(Vocabulary, UnknownGramsAreIgnoredButCountInTotal) {
  std::vector<GramCounts> corpus{make_counts({{{1, 2}, 4}})};
  const auto vocab = Vocabulary::build(corpus, 1);
  const auto with_noise = make_counts({{{1, 2}, 4}, {{8, 8}, 4}});
  const auto clean = make_counts({{{1, 2}, 4}});
  const auto v_noise = vocab.tfidf_vector(with_noise, false);
  const auto v_clean = vocab.tfidf_vector(clean, false);
  EXPECT_LT(v_noise[0], v_clean[0]);  // diluted term frequency
}

TEST(Vocabulary, SaveLoadRoundTrips) {
  std::vector<GramCounts> corpus{
      make_counts({{{1, 2}, 5}, {{2, 3}, 3}, {{1, 2, 3}, 2}})};
  const auto vocab = Vocabulary::build(corpus, 3);
  std::stringstream stream;
  vocab.save(stream);
  const auto loaded = Vocabulary::load(stream);
  EXPECT_EQ(loaded.grams(), vocab.grams());
  EXPECT_EQ(loaded.frequencies(), vocab.frequencies());
  EXPECT_EQ(loaded.idf(), vocab.idf());
  EXPECT_EQ(loaded.tfidf_vector(corpus[0]), vocab.tfidf_vector(corpus[0]));
}

TEST(Vocabulary, LoadRejectsTruncatedStream) {
  std::stringstream stream;
  stream.write("junk", 4);
  EXPECT_THROW((void)Vocabulary::load(stream), std::runtime_error);
}

}  // namespace
}  // namespace soteria::features
