#include "features/biased_walk.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"

namespace soteria::features {
namespace {

cfg::Cfg diamond_cfg() {
  graph::DiGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return cfg::Cfg(std::move(g), 0);
}

TEST(BiasedWalk, ConfigValidation) {
  BiasedWalkConfig ok;
  EXPECT_NO_THROW(validate(ok));
  BiasedWalkConfig bad_p;
  bad_p.return_parameter = 0.0;
  EXPECT_THROW(validate(bad_p), std::invalid_argument);
  BiasedWalkConfig bad_q;
  bad_q.in_out_parameter = -1.0;
  EXPECT_THROW(validate(bad_q), std::invalid_argument);
}

TEST(BiasedWalk, ProducesValidTransitions) {
  const UndirectedView view(diamond_cfg());
  math::Rng rng(1);
  BiasedWalkConfig config;
  config.return_parameter = 0.5;
  config.in_out_parameter = 2.0;
  const auto trace = biased_walk_nodes(view, 200, config, rng);
  ASSERT_EQ(trace.size(), 201U);
  EXPECT_EQ(trace.front(), view.entry());
  for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
    const auto& nbrs = view.neighbors(trace[i]);
    EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), trace[i + 1]) !=
                nbrs.end());
  }
}

TEST(BiasedWalk, HighReturnParameterSuppressesBacktracking) {
  math::Rng rng(2);
  const cfg::Cfg cfg(graph::chain_graph(12, 0, rng), 0);
  const UndirectedView view(cfg);

  const auto backtracks = [&](double p, std::uint64_t seed) {
    math::Rng walk_rng(seed);
    BiasedWalkConfig config;
    config.return_parameter = p;
    std::size_t count = 0;
    const auto trace = biased_walk_nodes(view, 4000, config, walk_rng);
    for (std::size_t i = 2; i < trace.size(); ++i) {
      count += trace[i] == trace[i - 2] && trace[i] != trace[i - 1];
    }
    return count;
  };
  // p >> 1 penalizes returning to the previous node.
  EXPECT_LT(backtracks(50.0, 3), backtracks(0.02, 3));
}

TEST(BiasedWalk, UnitParametersMatchUniformDistribution) {
  // With p = q = 1 on a regular graph the stationary visit counts match
  // the uniform walk's (degree-proportional).
  const UndirectedView view(diamond_cfg());
  math::Rng rng(4);
  BiasedWalkConfig config;  // p = q = 1
  std::array<std::size_t, 4> visits{};
  const auto trace = biased_walk_nodes(view, 40000, config, rng);
  for (graph::NodeId v : trace) ++visits[v];
  for (std::size_t count : visits) {
    EXPECT_NEAR(static_cast<double>(count) / trace.size(), 0.25, 0.02);
  }
}

TEST(BiasedWalk, SingleNodeStaysPut) {
  const cfg::Cfg lone(graph::DiGraph(1), 0);
  const UndirectedView view(lone);
  math::Rng rng(5);
  const auto trace = biased_walk_nodes(view, 10, BiasedWalkConfig{}, rng);
  for (graph::NodeId v : trace) EXPECT_EQ(v, 0U);
}

TEST(BiasedWalk, DeterministicGivenSeed) {
  const UndirectedView view(diamond_cfg());
  BiasedWalkConfig config;
  config.in_out_parameter = 3.0;
  math::Rng a(6);
  math::Rng b(6);
  EXPECT_EQ(biased_walk_nodes(view, 100, config, a),
            biased_walk_nodes(view, 100, config, b));
}

}  // namespace
}  // namespace soteria::features
