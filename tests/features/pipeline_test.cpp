#include "features/pipeline.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "graph/generators.h"

namespace soteria::features {
namespace {

std::vector<cfg::Cfg> small_corpus(std::size_t n, math::Rng& rng) {
  std::vector<cfg::Cfg> corpus;
  for (std::size_t i = 0; i < n; ++i) {
    corpus.emplace_back(
        graph::random_connected_dag_plus(10 + rng.index(20), 0.08, rng), 0);
  }
  return corpus;
}

PipelineConfig tiny_config() {
  PipelineConfig config;
  config.top_k = 40;
  config.walk.walks_per_labeling = 3;
  return config;
}

TEST(PipelineConfig, Validation) {
  EXPECT_NO_THROW(validate(PipelineConfig{}));
  PipelineConfig no_topk;
  no_topk.top_k = 0;
  EXPECT_THROW(validate(no_topk), std::invalid_argument);
  PipelineConfig no_grams;
  no_grams.gram_sizes.clear();
  EXPECT_THROW(validate(no_grams), std::invalid_argument);
  PipelineConfig big_gram;
  big_gram.gram_sizes = {5};
  EXPECT_THROW(validate(big_gram), std::invalid_argument);
  PipelineConfig bad_walk;
  bad_walk.walk.walks_per_labeling = 0;
  EXPECT_THROW(validate(bad_walk), std::invalid_argument);
}

TEST(Pipeline, FitRequiresCorpus) {
  math::Rng rng(1);
  EXPECT_THROW((void)FeaturePipeline::fit({}, tiny_config(), rng),
               std::invalid_argument);
}

TEST(Pipeline, ExtractShapesMatchConfig) {
  math::Rng rng(2);
  const auto corpus = small_corpus(8, rng);
  const auto pipeline = FeaturePipeline::fit(corpus, tiny_config(), rng);
  EXPECT_LE(pipeline.dbl_vocabulary().size(), 40U);
  EXPECT_GT(pipeline.dbl_vocabulary().size(), 0U);
  EXPECT_EQ(pipeline.combined_dimension(),
            pipeline.dbl_vocabulary().size() +
                pipeline.lbl_vocabulary().size());

  const auto features = pipeline.extract(corpus[0], rng);
  EXPECT_EQ(features.dbl.size(), 3U);
  EXPECT_EQ(features.lbl.size(), 3U);
  EXPECT_EQ(features.dbl[0].size(), pipeline.dbl_vocabulary().size());
  EXPECT_EQ(features.pooled_dbl.size(), pipeline.dbl_vocabulary().size());
  EXPECT_EQ(features.pooled_combined().size(),
            pipeline.combined_dimension());
  EXPECT_EQ(features.combined(0).size(), pipeline.combined_dimension());
}

TEST(Pipeline, CombinedConcatenatesInOrder) {
  math::Rng rng(3);
  const auto corpus = small_corpus(5, rng);
  const auto pipeline = FeaturePipeline::fit(corpus, tiny_config(), rng);
  const auto features = pipeline.extract(corpus[1], rng);
  const auto combined = features.combined(1);
  for (std::size_t i = 0; i < features.dbl[1].size(); ++i) {
    EXPECT_FLOAT_EQ(combined[i], features.dbl[1][i]);
  }
  for (std::size_t i = 0; i < features.lbl[1].size(); ++i) {
    EXPECT_FLOAT_EQ(combined[features.dbl[1].size() + i],
                    features.lbl[1][i]);
  }
  EXPECT_THROW((void)features.combined(99), std::out_of_range);
}

TEST(Pipeline, ExtractionIsDeterministicGivenRng) {
  math::Rng rng(4);
  const auto corpus = small_corpus(5, rng);
  const auto pipeline = FeaturePipeline::fit(corpus, tiny_config(), rng);
  math::Rng a(11);
  math::Rng b(11);
  const auto fa = pipeline.extract(corpus[0], a);
  const auto fb = pipeline.extract(corpus[0], b);
  EXPECT_EQ(fa.dbl, fb.dbl);
  EXPECT_EQ(fa.pooled_lbl, fb.pooled_lbl);
}

TEST(Pipeline, RandomizationPropertyFreshWalksDiffer) {
  // The paper's defense: every extraction run draws fresh walks, so the
  // concrete vectors differ run to run (while remaining close in
  // distribution).
  math::Rng rng(5);
  const auto corpus = small_corpus(5, rng);
  const auto pipeline = FeaturePipeline::fit(corpus, tiny_config(), rng);
  const auto f1 = pipeline.extract(corpus[0], rng);
  const auto f2 = pipeline.extract(corpus[0], rng);
  EXPECT_NE(f1.dbl, f2.dbl);
}

TEST(Pipeline, MeanVectorsAverageWalks) {
  math::Rng rng(6);
  const auto corpus = small_corpus(4, rng);
  const auto pipeline = FeaturePipeline::fit(corpus, tiny_config(), rng);
  const auto features = pipeline.extract(corpus[0], rng);
  const auto mean = features.mean_dbl();
  ASSERT_EQ(mean.size(), features.dbl[0].size());
  for (std::size_t i = 0; i < mean.size(); ++i) {
    float expected = 0.0F;
    for (const auto& walk : features.dbl) expected += walk[i];
    expected /= static_cast<float>(features.dbl.size());
    EXPECT_NEAR(mean[i], expected, 1e-6);
  }
}

TEST(Pipeline, PooledVectorHasUnitNormWhenEnabled) {
  math::Rng rng(7);
  const auto corpus = small_corpus(4, rng);
  const auto pipeline = FeaturePipeline::fit(corpus, tiny_config(), rng);
  const auto features = pipeline.extract(corpus[0], rng);
  double norm = 0.0;
  for (float x : features.pooled_dbl) norm += static_cast<double>(x) * x;
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
}

TEST(Pipeline, SaveLoadRoundTrips) {
  math::Rng rng(8);
  const auto corpus = small_corpus(6, rng);
  const auto pipeline = FeaturePipeline::fit(corpus, tiny_config(), rng);
  std::stringstream stream;
  pipeline.save(stream);
  const auto loaded = FeaturePipeline::load(stream);
  EXPECT_EQ(loaded.config().top_k, pipeline.config().top_k);
  EXPECT_EQ(loaded.config().gram_sizes, pipeline.config().gram_sizes);
  EXPECT_EQ(loaded.dbl_vocabulary().grams(),
            pipeline.dbl_vocabulary().grams());
  math::Rng a(9);
  math::Rng b(9);
  EXPECT_EQ(loaded.extract(corpus[0], a).pooled_dbl,
            pipeline.extract(corpus[0], b).pooled_dbl);
}

TEST(Pipeline, GramCountsPoolAcrossWalks) {
  math::Rng rng(10);
  const auto corpus = small_corpus(4, rng);
  const auto pipeline = FeaturePipeline::fit(corpus, tiny_config(), rng);
  const auto counts = pipeline.gram_counts(
      corpus[0], cfg::LabelingMethod::kDensity, rng);
  EXPECT_FALSE(counts.empty());
  // 3 walks of 5*|V| steps each -> total 2-,3-,4-gram occurrences.
  const std::size_t v = corpus[0].node_count();
  const std::size_t walk_len = 5 * v + 1;
  const std::size_t expected =
      3 * ((walk_len - 1) + (walk_len - 2) + (walk_len - 3));
  EXPECT_EQ(total_occurrences(counts), expected);
}

}  // namespace
}  // namespace soteria::features
