// Property tests for the randomization/stability trade-off the paper's
// defense rests on: fresh walks give *different* vectors (an adversary
// cannot predict them) that are nevertheless *close in distribution*
// (the classifier stays stable), while structural attacks move vectors
// further than walk noise does.
#include <gtest/gtest.h>

#include <cmath>

#include "cfg/extractor.h"
#include "cfg/gea.h"
#include "dataset/family_profiles.h"
#include "dataset/generator.h"
#include "features/pipeline.h"

namespace soteria::features {
namespace {

double cosine(const std::vector<float>& a, const std::vector<float>& b) {
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

struct Corpus {
  std::vector<dataset::Sample> samples;
  FeaturePipeline pipeline;
};

Corpus make_corpus() {
  math::Rng rng(91);
  Corpus corpus;
  for (int i = 0; i < 10; ++i) {
    for (auto family : dataset::all_families()) {
      corpus.samples.push_back(
          dataset::generate_sample(family, corpus.samples.size(), rng));
    }
  }
  std::vector<cfg::Cfg> cfgs;
  for (const auto& s : corpus.samples) cfgs.push_back(s.cfg);
  PipelineConfig config;
  config.top_k = 200;
  config.gram_sizes = {1, 2, 3};
  config.walk.walks_per_labeling = 6;
  corpus.pipeline = FeaturePipeline::fit(cfgs, config, rng);
  return corpus;
}

class StabilityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { corpus_ = new Corpus(make_corpus()); }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }
  static Corpus* corpus_;
};

Corpus* StabilityTest::corpus_ = nullptr;

TEST_F(StabilityTest, FreshWalksDifferButStayClose) {
  math::Rng rng(92);
  for (std::size_t i = 0; i < 8; ++i) {
    const auto& sample = corpus_->samples[i];
    const auto a = corpus_->pipeline.extract(sample.cfg, rng);
    const auto b = corpus_->pipeline.extract(sample.cfg, rng);
    EXPECT_NE(a.pooled_dbl, b.pooled_dbl);  // randomization property
    // 6 pooled walks leave ~0.8-0.9 cosine self-similarity; anything
    // below 0.7 would mean the features carry no stable signal.
    EXPECT_GT(cosine(a.pooled_combined(), b.pooled_combined()), 0.7)
        << "sample " << i << " pooled vectors drifted too far";
  }
}

TEST_F(StabilityTest, GeaMovesVectorsMoreThanWalkNoise) {
  math::Rng rng(93);
  double self_similarity = 0.0;
  double attack_similarity = 0.0;
  int count = 0;
  for (std::size_t i = 0; i + 1 < corpus_->samples.size() && count < 8;
       i += 2, ++count) {
    const auto& sample = corpus_->samples[i];
    const auto& donor = corpus_->samples[i + 1];
    const auto base = corpus_->pipeline.extract(sample.cfg, rng);
    const auto again = corpus_->pipeline.extract(sample.cfg, rng);
    const auto attacked = corpus_->pipeline.extract(
        cfg::gea_combine(sample.cfg, donor.cfg).combined, rng);
    self_similarity += cosine(base.pooled_combined(),
                              again.pooled_combined());
    attack_similarity += cosine(base.pooled_combined(),
                                attacked.pooled_combined());
  }
  EXPECT_GT(self_similarity / count, attack_similarity / count)
      << "GEA should move feature vectors further than walk noise";
}

TEST_F(StabilityTest, StrainMatesCloserThanCrossFamilyOnAverage) {
  // Strain-mates (mutations of one template — how the corpus is built)
  // must sit closer in feature space than cross-family pairs; this is
  // what both the detector's clean manifold and the classifier rely on.
  math::Rng rng(94);
  isa::MutationConfig mutation;
  std::vector<std::vector<float>> gafgyt;
  for (int i = 0; i < 6; ++i) {
    const auto mate = dataset::generate_variant_sample(
        dataset::Family::kGafgyt, 1000 + i, /*variant_seed=*/777,
        mutation, rng);
    gafgyt.push_back(
        corpus_->pipeline.extract(mate.cfg, rng).pooled_combined());
  }
  std::vector<std::vector<float>> mirai;
  for (const auto& s : corpus_->samples) {
    if (s.family == dataset::Family::kMirai && mirai.size() < 6) {
      mirai.push_back(
          corpus_->pipeline.extract(s.cfg, rng).pooled_combined());
    }
  }
  double within = 0.0;
  int within_count = 0;
  for (std::size_t i = 0; i < gafgyt.size(); ++i) {
    for (std::size_t j = i + 1; j < gafgyt.size(); ++j) {
      within += cosine(gafgyt[i], gafgyt[j]);
      ++within_count;
    }
  }
  double across = 0.0;
  int across_count = 0;
  for (const auto& g : gafgyt) {
    for (const auto& m : mirai) {
      across += cosine(g, m);
      ++across_count;
    }
  }
  EXPECT_GT(within / within_count, across / across_count);
}

TEST_F(StabilityTest, AppendAttackLeavesFeaturesIdentical) {
  // System-level statement of the extractor's pruning property: a
  // sample padded with unreachable bytes yields the *same CFG*, hence
  // identical features under identical walk seeds.
  math::Rng pad_rng(95);
  const auto& sample = corpus_->samples[0];
  auto padded_binary = sample.binary;
  for (int i = 0; i < 64; ++i) {
    padded_binary.push_back(0x10);  // movimm opcodes, never reachable
    padded_binary.push_back(0);
    padded_binary.push_back(42);
    padded_binary.push_back(0);
  }
  const auto padded_cfg = cfg::extract(padded_binary);
  math::Rng walks_a(96);
  math::Rng walks_b(96);
  const auto original = corpus_->pipeline.extract(sample.cfg, walks_a);
  const auto padded = corpus_->pipeline.extract(padded_cfg, walks_b);
  EXPECT_EQ(original.pooled_dbl, padded.pooled_dbl);
  EXPECT_EQ(original.pooled_lbl, padded.pooled_lbl);
  EXPECT_EQ(original.dbl, padded.dbl);
}

}  // namespace
}  // namespace soteria::features
