#include "features/random_walk.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"

namespace soteria::features {
namespace {

cfg::Cfg diamond_cfg() {
  graph::DiGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return cfg::Cfg(std::move(g), 0);
}

TEST(UndirectedView, BuildsSymmetricAdjacency) {
  const UndirectedView view(diamond_cfg());
  EXPECT_EQ(view.node_count(), 4U);
  EXPECT_EQ(view.entry(), 0U);
  const auto& n0 = view.neighbors(0);
  EXPECT_EQ(n0.size(), 2U);
  const auto& n3 = view.neighbors(3);
  EXPECT_EQ(n3.size(), 2U);  // sees 1 and 2 despite edge direction
}

TEST(UndirectedView, EmptyCfgThrows) {
  EXPECT_THROW(UndirectedView(cfg::Cfg{}), std::invalid_argument);
}

TEST(WalkConfig, Validation) {
  WalkConfig ok;
  EXPECT_NO_THROW(validate(ok));
  WalkConfig bad_len;
  bad_len.length_multiplier = 0.0;
  EXPECT_THROW(validate(bad_len), std::invalid_argument);
  WalkConfig bad_walks;
  bad_walks.walks_per_labeling = 0;
  EXPECT_THROW(validate(bad_walks), std::invalid_argument);
}

TEST(RandomWalk, HasRequestedLengthAndStartsAtEntry) {
  const UndirectedView view(diamond_cfg());
  math::Rng rng(1);
  const auto trace = random_walk_nodes(view, 25, rng);
  ASSERT_EQ(trace.size(), 26U);
  EXPECT_EQ(trace.front(), 0U);
}

TEST(RandomWalk, EveryStepIsAnAdjacentNode) {
  const UndirectedView view(diamond_cfg());
  math::Rng rng(2);
  const auto trace = random_walk_nodes(view, 100, rng);
  for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
    const auto& nbrs = view.neighbors(trace[i]);
    EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), trace[i + 1]) !=
                nbrs.end())
        << "illegal transition " << trace[i] << " -> " << trace[i + 1];
  }
}

TEST(RandomWalk, SingleNodeGraphStaysPut) {
  const cfg::Cfg lone(graph::DiGraph(1), 0);
  const UndirectedView view(lone);
  math::Rng rng(3);
  const auto trace = random_walk_nodes(view, 10, rng);
  ASSERT_EQ(trace.size(), 11U);
  for (graph::NodeId v : trace) EXPECT_EQ(v, 0U);
}

TEST(RandomWalk, DeterministicGivenSeed) {
  const UndirectedView view(diamond_cfg());
  math::Rng a(7);
  math::Rng b(7);
  EXPECT_EQ(random_walk_nodes(view, 50, a), random_walk_nodes(view, 50, b));
}

TEST(RandomWalk, DifferentSeedsDiverge) {
  const UndirectedView view(diamond_cfg());
  math::Rng a(7);
  math::Rng b(8);
  EXPECT_NE(random_walk_nodes(view, 50, a), random_walk_nodes(view, 50, b));
}

TEST(RandomWalk, VisitsProportionalToDegree) {
  // On the diamond's undirected view all nodes have degree 2, so long
  // walks should spread roughly evenly.
  const UndirectedView view(diamond_cfg());
  math::Rng rng(9);
  std::array<std::size_t, 4> visits{};
  const auto trace = random_walk_nodes(view, 40000, rng);
  for (graph::NodeId v : trace) ++visits[v];
  for (std::size_t count : visits) {
    EXPECT_NEAR(static_cast<double>(count) / trace.size(), 0.25, 0.02);
  }
}

TEST(ApplyLabels, MapsThrough) {
  const std::vector<graph::NodeId> nodes{0, 2, 1};
  const std::vector<cfg::Label> labels{5, 6, 7};
  const auto mapped = apply_labels(nodes, labels);
  EXPECT_EQ(mapped, (std::vector<cfg::Label>{5, 7, 6}));
}

TEST(ApplyLabels, ThrowsOnShortTable) {
  const std::vector<graph::NodeId> nodes{0, 9};
  const std::vector<cfg::Label> labels{1, 2};
  EXPECT_THROW((void)apply_labels(nodes, labels), std::out_of_range);
}

TEST(LabeledWalks, ShapeMatchesConfig) {
  const auto cfg = diamond_cfg();
  const auto labels = cfg::label_nodes(cfg, cfg::LabelingMethod::kLevel);
  WalkConfig config;
  config.walks_per_labeling = 4;
  config.length_multiplier = 3.0;
  math::Rng rng(4);
  const auto walks = labeled_walks(cfg, labels, config, rng);
  ASSERT_EQ(walks.size(), 4U);
  for (const auto& walk : walks) {
    EXPECT_EQ(walk.size(), 3 * 4 + 1);  // 3 * |V| steps + start
  }
}

TEST(LabeledWalks, PaperLengthIsFiveTimesNodes) {
  const auto cfg = diamond_cfg();
  const auto labels = cfg::label_nodes(cfg, cfg::LabelingMethod::kDensity);
  math::Rng rng(5);
  const auto walks = labeled_walks(cfg, labels, WalkConfig{}, rng);
  ASSERT_EQ(walks.size(), 10U);
  EXPECT_EQ(walks[0].size(), 5 * 4 + 1);
}

}  // namespace
}  // namespace soteria::features
