#include "features/ngram.h"

#include <gtest/gtest.h>

namespace soteria::features {
namespace {

class GramLength : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GramLength, PackUnpackRoundTrips) {
  const std::size_t n = GetParam();
  std::vector<cfg::Label> labels;
  for (std::size_t i = 0; i < n; ++i) labels.push_back(100 * i + 7);
  const GramKey key = pack_gram(labels);
  EXPECT_EQ(gram_length(key), n);
  EXPECT_EQ(unpack_gram(key), labels);
}

INSTANTIATE_TEST_SUITE_P(Lengths, GramLength, ::testing::Values(1, 2, 3, 4));

TEST(Gram, MaxLabelRoundTrips) {
  const std::vector<cfg::Label> labels{kMaxGramLabel, 0, kMaxGramLabel};
  EXPECT_EQ(unpack_gram(pack_gram(labels)), labels);
}

TEST(Gram, DistinctGramsGetDistinctKeys) {
  const std::vector<cfg::Label> a{1, 2};
  const std::vector<cfg::Label> b{2, 1};
  const std::vector<cfg::Label> c{1, 2, 0};
  EXPECT_NE(pack_gram(a), pack_gram(b));
  EXPECT_NE(pack_gram(a), pack_gram(c));  // length differs
}

TEST(Gram, PackValidation) {
  EXPECT_THROW((void)pack_gram(std::vector<cfg::Label>{}),
               std::invalid_argument);
  EXPECT_THROW((void)pack_gram(std::vector<cfg::Label>{1, 2, 3, 4, 5}),
               std::invalid_argument);
  EXPECT_THROW((void)pack_gram(std::vector<cfg::Label>{kMaxGramLabel + 1}),
               std::invalid_argument);
}

TEST(CountGrams, CountsSlidingWindows) {
  const std::vector<cfg::Label> walk{1, 2, 1, 2, 1};
  const std::vector<std::size_t> sizes{2};
  GramCounts counts;
  count_grams(walk, sizes, counts);
  EXPECT_EQ(counts.at(pack_gram(std::vector<cfg::Label>{1, 2})), 2U);
  EXPECT_EQ(counts.at(pack_gram(std::vector<cfg::Label>{2, 1})), 2U);
  EXPECT_EQ(counts.size(), 2U);
  EXPECT_EQ(total_occurrences(counts), 4U);
}

TEST(CountGrams, MultipleSizesAccumulate) {
  const std::vector<cfg::Label> walk{3, 3, 3};
  const std::vector<std::size_t> sizes{2, 3};
  GramCounts counts;
  count_grams(walk, sizes, counts);
  EXPECT_EQ(counts.at(pack_gram(std::vector<cfg::Label>{3, 3})), 2U);
  EXPECT_EQ(counts.at(pack_gram(std::vector<cfg::Label>{3, 3, 3})), 1U);
}

TEST(CountGrams, ShortWalksProduceNothing) {
  const std::vector<cfg::Label> walk{1};
  const std::vector<std::size_t> sizes{2, 3, 4};
  GramCounts counts;
  count_grams(walk, sizes, counts);
  EXPECT_TRUE(counts.empty());
}

TEST(CountGrams, ValidatesSizes) {
  const std::vector<cfg::Label> walk{1, 2, 3};
  GramCounts counts;
  const std::vector<std::size_t> zero{0};
  const std::vector<std::size_t> huge{5};
  EXPECT_THROW(count_grams(walk, zero, counts), std::invalid_argument);
  EXPECT_THROW(count_grams(walk, huge, counts), std::invalid_argument);
}

TEST(CountGrams, MultiWalkOverloadPools) {
  const std::vector<std::vector<cfg::Label>> walks{{1, 2}, {1, 2}};
  const std::vector<std::size_t> sizes{2};
  const auto counts = count_grams(walks, sizes);
  EXPECT_EQ(counts.at(pack_gram(std::vector<cfg::Label>{1, 2})), 2U);
}

TEST(Gram, ToStringFormatsDashSeparated) {
  EXPECT_EQ(gram_to_string(pack_gram(std::vector<cfg::Label>{3, 1, 4})),
            "3-1-4");
  EXPECT_EQ(gram_to_string(pack_gram(std::vector<cfg::Label>{9})), "9");
}

}  // namespace
}  // namespace soteria::features
