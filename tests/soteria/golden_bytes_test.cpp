// Golden-bytes regression: training from a fixed seed must produce a
// byte-stable model file — across independent runs, across thread
// counts, and across a save -> load -> save round trip. Any
// nondeterminism smuggled into the pipeline (iteration-order-dependent
// accumulation, shared RNG streams, uninitialized padding in the
// writers) shows up here as a byte diff.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "dataset/generator.h"
#include "soteria/presets.h"
#include "soteria/system.h"

namespace soteria::core {
namespace {

std::string save_bytes(const SoteriaSystem& system) {
  std::ostringstream out(std::ios::binary);
  system.save(out);
  return out.str();
}

SoteriaSystem train_tiny(std::size_t num_threads) {
  dataset::DatasetConfig data_config;
  data_config.scale = 0.008;
  math::Rng rng(31);
  const auto data = dataset::generate_dataset(data_config, rng);
  SoteriaConfig config = tiny_config();
  config.seed = 31;
  config.num_threads = num_threads;
  return SoteriaSystem::train(data.train, config);
}

struct GoldenBytesFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    bytes = new std::string(save_bytes(train_tiny(1)));
  }
  static void TearDownTestSuite() {
    delete bytes;
    bytes = nullptr;
  }
  static std::string* bytes;
};

std::string* GoldenBytesFixture::bytes = nullptr;

TEST_F(GoldenBytesFixture, SaveIsByteStableAcrossRunsAndThreadCounts) {
  // Second training run at a different thread count: same seed, same
  // corpus, so the serialized model must be bit-identical.
  const auto again = save_bytes(train_tiny(4));
  ASSERT_FALSE(bytes->empty());
  ASSERT_EQ(bytes->size(), again.size());
  EXPECT_TRUE(*bytes == again)
      << "retrained model bytes diverged from the first run";
}

TEST_F(GoldenBytesFixture, SaveLoadSaveRoundTripsIdentically) {
  std::istringstream in(*bytes, std::ios::binary);
  const auto loaded = SoteriaSystem::load(in);
  const auto resaved = save_bytes(loaded);
  ASSERT_EQ(bytes->size(), resaved.size());
  EXPECT_TRUE(*bytes == resaved)
      << "save -> load -> save changed the byte stream";
}

TEST_F(GoldenBytesFixture, LoadedModelScoresMatchOriginalBytes) {
  // Two independent loads of the same bytes must agree on a verdict —
  // guards against load-order-dependent state.
  std::istringstream in_a(*bytes, std::ios::binary);
  std::istringstream in_b(*bytes, std::ios::binary);
  auto a = SoteriaSystem::load(in_a);
  auto b = SoteriaSystem::load(in_b);
  EXPECT_DOUBLE_EQ(a.detector().threshold(), b.detector().threshold());

  dataset::DatasetConfig data_config;
  data_config.scale = 0.008;
  math::Rng rng(32);
  const auto data = dataset::generate_dataset(data_config, rng);
  math::Rng rng_a(33);
  math::Rng rng_b(33);
  const auto verdict_a = a.analyze(data.test.front().cfg, rng_a);
  const auto verdict_b = b.analyze(data.test.front().cfg, rng_b);
  EXPECT_DOUBLE_EQ(verdict_a.reconstruction_error,
                   verdict_b.reconstruction_error);
  EXPECT_EQ(verdict_a.adversarial, verdict_b.adversarial);
  EXPECT_EQ(verdict_a.predicted, verdict_b.predicted);
}

}  // namespace
}  // namespace soteria::core
