// Determinism contract of the parallel batch engine: every result that
// can be computed on N threads must be bit-identical to the serial
// computation, because each sample draws from an RNG child keyed by its
// index rather than from a shared sequential stream.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "dataset/generator.h"
#include "features/pipeline.h"
#include "soteria/presets.h"
#include "soteria/system.h"

namespace soteria::core {
namespace {

/// AnalyzeOptions with an explicit thread count.
AnalyzeOptions with_threads(std::size_t threads) {
  AnalyzeOptions options;
  options.num_threads = threads;
  return options;
}

// Trains the same tiny experiment twice — serially and on 4 threads —
// once for the whole suite (training dominates test time).
struct ParallelDeterminismFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    dataset::DatasetConfig data_config;
    data_config.scale = 0.008;
    math::Rng rng(29);
    data = new dataset::Dataset(dataset::generate_dataset(data_config, rng));

    SoteriaConfig config = tiny_config();
    config.seed = 29;
    config.num_threads = 1;
    serial = new SoteriaSystem(SoteriaSystem::train(data->train, config));
    config.num_threads = 4;
    parallel = new SoteriaSystem(SoteriaSystem::train(data->train, config));
  }
  static void TearDownTestSuite() {
    delete parallel;
    delete serial;
    delete data;
    parallel = nullptr;
    serial = nullptr;
    data = nullptr;
  }

  [[nodiscard]] static std::vector<cfg::Cfg> test_cfgs(std::size_t n) {
    std::vector<cfg::Cfg> cfgs;
    for (std::size_t i = 0; i < std::min(n, data->test.size()); ++i) {
      cfgs.push_back(data->test[i].cfg);
    }
    return cfgs;
  }

  static dataset::Dataset* data;
  static SoteriaSystem* serial;
  static SoteriaSystem* parallel;
};

dataset::Dataset* ParallelDeterminismFixture::data = nullptr;
SoteriaSystem* ParallelDeterminismFixture::serial = nullptr;
SoteriaSystem* ParallelDeterminismFixture::parallel = nullptr;

TEST_F(ParallelDeterminismFixture, TrainedSystemsSerializeIdentically) {
  std::stringstream serial_stream;
  std::stringstream parallel_stream;
  serial->save(serial_stream);
  parallel->save(parallel_stream);
  // Byte-for-byte equality of the full save stream: vocabularies,
  // detector weights, thresholds, classifier weights — everything.
  EXPECT_EQ(serial_stream.str(), parallel_stream.str());
}

TEST_F(ParallelDeterminismFixture, FitIsThreadCountInvariant) {
  std::vector<cfg::Cfg> corpus;
  for (const auto& s : data->train) corpus.push_back(s.cfg);
  const auto config = tiny_config().pipeline;

  math::Rng rng_a(31);
  const auto serial_fit =
      features::FeaturePipeline::fit(corpus, config, rng_a, 1);
  for (std::size_t threads : {2U, 8U}) {
    math::Rng rng_b(31);
    const auto parallel_fit =
        features::FeaturePipeline::fit(corpus, config, rng_b, threads);
    std::stringstream a;
    std::stringstream b;
    serial_fit.save(a);
    parallel_fit.save(b);
    EXPECT_EQ(a.str(), b.str()) << threads << " threads";
  }
}

TEST_F(ParallelDeterminismFixture, AnalyzeBatchIsThreadCountInvariant) {
  const auto cfgs = test_cfgs(12);
  ASSERT_FALSE(cfgs.empty());
  const math::Rng rng(33);
  const auto baseline = serial->analyze_batch(cfgs, rng, with_threads(1));
  ASSERT_EQ(baseline.size(), cfgs.size());
  for (std::size_t threads : {2U, 8U}) {
    const auto verdicts = serial->analyze_batch(cfgs, rng, with_threads(threads));
    ASSERT_EQ(verdicts.size(), baseline.size());
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      EXPECT_EQ(verdicts[i].adversarial, baseline[i].adversarial);
      EXPECT_EQ(verdicts[i].predicted, baseline[i].predicted);
      // Bit-identical, not approximately equal: same arithmetic in the
      // same order regardless of which thread ran the sample.
      EXPECT_EQ(verdicts[i].reconstruction_error,
                baseline[i].reconstruction_error)
          << "sample " << i << " with " << threads << " threads";
    }
  }
}

TEST_F(ParallelDeterminismFixture, AnalyzeBatchMatchesPerSampleChildren) {
  const auto cfgs = test_cfgs(6);
  const math::Rng rng(35);
  const auto batch = serial->analyze_batch(cfgs, rng, with_threads(4));
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    math::Rng sample_rng = rng.child(i);
    const auto verdict = serial->analyze(cfgs[i], sample_rng);
    EXPECT_EQ(batch[i].adversarial, verdict.adversarial);
    EXPECT_EQ(batch[i].predicted, verdict.predicted);
    EXPECT_EQ(batch[i].reconstruction_error, verdict.reconstruction_error);
  }
}

TEST_F(ParallelDeterminismFixture, AnalyzeBatchDoesNotAdvanceCallerRng) {
  const auto cfgs = test_cfgs(4);
  math::Rng rng(37);
  (void)serial->analyze_batch(cfgs, rng, with_threads(2));
  math::Rng fresh(37);
  EXPECT_EQ(rng.engine()(), fresh.engine()());
}

TEST_F(ParallelDeterminismFixture, AnalyzeBatchDefaultUsesConfigThreads) {
  const auto cfgs = test_cfgs(5);
  const math::Rng rng(39);
  // `parallel` was trained with num_threads = 4; default options must
  // defer to config().num_threads and agree with the explicit serial
  // call.
  const auto defaulted = parallel->analyze_batch(cfgs, rng, AnalyzeOptions{});
  const auto explicit_serial = parallel->analyze_batch(cfgs, rng, with_threads(1));
  ASSERT_EQ(defaulted.size(), explicit_serial.size());
  for (std::size_t i = 0; i < defaulted.size(); ++i) {
    EXPECT_EQ(defaulted[i].reconstruction_error,
              explicit_serial[i].reconstruction_error);
    EXPECT_EQ(defaulted[i].predicted, explicit_serial[i].predicted);
  }
}

TEST_F(ParallelDeterminismFixture, AnalyzeBatchEmptyInput) {
  const math::Rng rng(41);
  EXPECT_TRUE(serial->analyze_batch({}, rng, with_threads(4)).empty());
}

TEST_F(ParallelDeterminismFixture, AnalyzeBatchExpiredDeadlineThrows) {
  const auto cfgs = test_cfgs(4);
  const math::Rng rng(43);
  AnalyzeOptions options;
  options.deadline = std::chrono::steady_clock::time_point::min();
  try {
    (void)serial->analyze_batch(cfgs, rng, options);
    FAIL() << "expected Error{kDeadlineExceeded}";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
  }
  // A generous deadline changes nothing about the verdicts.
  options.deadline =
      std::chrono::steady_clock::now() + std::chrono::hours(1);
  const auto relaxed = serial->analyze_batch(cfgs, rng, options);
  const auto baseline = serial->analyze_batch(cfgs, rng, with_threads(1));
  ASSERT_EQ(relaxed.size(), baseline.size());
  for (std::size_t i = 0; i < relaxed.size(); ++i) {
    EXPECT_EQ(relaxed[i].reconstruction_error,
              baseline[i].reconstruction_error);
  }
}

}  // namespace
}  // namespace soteria::core
