#include "soteria/report.h"

#include <gtest/gtest.h>

#include "dataset/generator.h"
#include "soteria/presets.h"

namespace soteria::core {
namespace {

// One tiny trained system shared across the suite (training dominates).
struct ReportFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    dataset::DatasetConfig data_config;
    data_config.scale = 0.006;
    math::Rng rng(55);
    data = new dataset::Dataset(
        dataset::generate_dataset(data_config, rng));
    SoteriaConfig config = tiny_config();
    config.seed = 55;
    system = new SoteriaSystem(SoteriaSystem::train(data->train, config));

    std::vector<dataset::Sample> everything = data->train;
    everything.insert(everything.end(), data->test.begin(),
                      data->test.end());
    const auto targets = dataset::select_all_targets(everything);
    adversarial = new std::vector<dataset::AdversarialExample>(
        dataset::generate_adversarial_set(data->test, targets[1]));
  }
  static void TearDownTestSuite() {
    delete adversarial;
    delete system;
    delete data;
    adversarial = nullptr;
    system = nullptr;
    data = nullptr;
  }

  static dataset::Dataset* data;
  static SoteriaSystem* system;
  static std::vector<dataset::AdversarialExample>* adversarial;
};

dataset::Dataset* ReportFixture::data = nullptr;
SoteriaSystem* ReportFixture::system = nullptr;
std::vector<dataset::AdversarialExample>* ReportFixture::adversarial =
    nullptr;

TEST_F(ReportFixture, CountsAreConsistent) {
  math::Rng rng(56);
  const auto report =
      evaluate_system(*system, data->test, *adversarial, rng);

  std::size_t clean_total = 0;
  std::size_t flagged_total = 0;
  for (std::size_t i = 0; i < dataset::kFamilyCount; ++i) {
    clean_total += report.clean_total[i];
    flagged_total += report.clean_flagged[i];
  }
  EXPECT_EQ(clean_total, data->test.size());
  EXPECT_EQ(report.detection.false_positives, flagged_total);
  EXPECT_EQ(report.detection.true_negatives + flagged_total,
            data->test.size());
  EXPECT_EQ(report.confusion.total(),
            data->test.size() - flagged_total);

  std::size_t ae_total = 0;
  std::size_t missed_total = 0;
  for (std::size_t s = 0; s < dataset::kTargetSizeCount; ++s) {
    ae_total += report.total_by_size[s];
    missed_total += report.missed_by_size[s];
  }
  EXPECT_EQ(ae_total, adversarial->size());
  EXPECT_EQ(report.detection.false_negatives, missed_total);
  EXPECT_EQ(report.detection.true_positives + missed_total,
            adversarial->size());
}

TEST_F(ReportFixture, RatesAreInRange) {
  math::Rng rng(57);
  const auto report =
      evaluate_system(*system, data->test, *adversarial, rng);
  EXPECT_GE(report.detection_rate(), 0.0);
  EXPECT_LE(report.detection_rate(), 1.0);
  EXPECT_GE(report.classification_accuracy(), 0.0);
  EXPECT_LE(report.classification_accuracy(), 1.0);
}

TEST_F(ReportFixture, RenderContainsAllSections) {
  math::Rng rng(58);
  const auto report =
      evaluate_system(*system, data->test, *adversarial, rng);
  const auto text = render_report(report);
  EXPECT_NE(text.find("AE detection rate"), std::string::npos);
  EXPECT_NE(text.find("Per-class clean behaviour"), std::string::npos);
  EXPECT_NE(text.find("Adversarial examples by target size"),
            std::string::npos);
  EXPECT_NE(text.find("Gafgyt"), std::string::npos);
}

TEST(EvaluationReport, EmptyInputsGiveZeroedReport) {
  // evaluate_system over empty spans never divides by zero.
  EvaluationReport report;
  EXPECT_DOUBLE_EQ(report.detection_rate(), 0.0);
  EXPECT_DOUBLE_EQ(report.classification_accuracy(), 0.0);
  const auto text = render_report(report);
  EXPECT_FALSE(text.empty());
}

}  // namespace
}  // namespace soteria::core
