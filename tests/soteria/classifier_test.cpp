#include "soteria/classifier.h"

#include <gtest/gtest.h>

#include <sstream>

namespace soteria::core {
namespace {

constexpr std::size_t kDim = 24;

// Class-c vectors carry an elevated contiguous block (conv-friendly
// spatial pattern): dims [6c, 6c+6).
std::vector<float> class_vector(std::size_t class_index, math::Rng& rng) {
  std::vector<float> v(kDim, 0.0F);
  for (std::size_t i = 6 * class_index; i < 6 * class_index + 6; ++i) {
    v[i] = 0.8F + static_cast<float>(rng.normal(0.0, 0.05));
  }
  for (float& x : v) x += static_cast<float>(rng.normal(0.0, 0.02));
  return v;
}

LabeledVectors make_training(std::size_t per_class, std::uint64_t seed) {
  math::Rng rng(seed);
  std::vector<std::vector<float>> rows;
  std::vector<std::size_t> labels;
  for (std::size_t c = 0; c < dataset::kFamilyCount; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      rows.push_back(class_vector(c, rng));
      labels.push_back(c);
    }
  }
  return LabeledVectors{pack_rows(rows), std::move(labels)};
}

nn::CnnConfig tiny_cnn() {
  nn::CnnConfig config;
  config.filters = 4;
  config.dense_units = 16;
  return config;
}

FamilyClassifier trained_classifier(std::uint64_t seed = 1) {
  math::Rng rng(seed);
  const auto dbl = make_training(32, seed + 100);
  const auto lbl = make_training(32, seed + 200);
  return FamilyClassifier::train(dbl, lbl, tiny_cnn(),
                                 nn::make_train_config(60, 16), 5e-3, rng);
}

features::SampleFeatures features_for_class(std::size_t class_index,
                                            std::uint64_t seed) {
  math::Rng rng(seed);
  features::SampleFeatures features;
  for (int w = 0; w < 5; ++w) {
    features.dbl.push_back(class_vector(class_index, rng));
    features.lbl.push_back(class_vector(class_index, rng));
  }
  features.pooled_dbl = features.mean_dbl();
  features.pooled_lbl = features.mean_lbl();
  return features;
}

TEST(PackRows, BuildsMatrixAndValidates) {
  const auto m = pack_rows({{1.0F, 2.0F}, {3.0F, 4.0F}});
  EXPECT_EQ(m.rows(), 2U);
  EXPECT_FLOAT_EQ(m(1, 0), 3.0F);
  EXPECT_THROW((void)pack_rows({}), std::invalid_argument);
  EXPECT_THROW((void)pack_rows({{1.0F}, {1.0F, 2.0F}}),
               std::invalid_argument);
}

TEST(FamilyClassifier, LearnsSyntheticClasses) {
  auto classifier = trained_classifier();
  std::size_t correct = 0;
  for (std::size_t c = 0; c < dataset::kFamilyCount; ++c) {
    for (int trial = 0; trial < 5; ++trial) {
      const auto features =
          features_for_class(c, 1000 + 10 * c + trial);
      if (classifier.predict(features) == dataset::family_from_index(c)) {
        ++correct;
      }
    }
  }
  EXPECT_GE(correct, 17U);  // 85%+ on clean synthetic classes
}

TEST(FamilyClassifier, VoteCountsSumToAllVectors) {
  auto classifier = trained_classifier();
  const auto features = features_for_class(1, 77);
  const auto votes = classifier.vote_counts(features);
  std::size_t total = 0;
  for (std::size_t v : votes) total += v;
  EXPECT_EQ(total, features.dbl.size() + features.lbl.size());
}

TEST(FamilyClassifier, SingleLabelingPredictionsWork) {
  auto classifier = trained_classifier();
  const auto features = features_for_class(2, 88);
  EXPECT_EQ(classifier.predict_dbl_only(features),
            dataset::family_from_index(2));
  EXPECT_EQ(classifier.predict_lbl_only(features),
            dataset::family_from_index(2));
}

TEST(FamilyClassifier, BatchPredictionsMatchClassCount) {
  auto classifier = trained_classifier();
  const auto data = make_training(2, 99);
  const auto predictions = classifier.predict_dbl(data.features);
  EXPECT_EQ(predictions.size(), data.features.rows());
  for (std::size_t p : predictions) {
    EXPECT_LT(p, dataset::kFamilyCount);
  }
}

TEST(FamilyClassifier, TrainValidation) {
  math::Rng rng(5);
  LabeledVectors empty;
  const auto good = make_training(4, 6);
  EXPECT_THROW((void)FamilyClassifier::train(empty, good, tiny_cnn(),
                                             nn::make_train_config(1, 4),
                                             1e-3, rng),
               std::invalid_argument);
  LabeledVectors mismatched = make_training(4, 7);
  mismatched.labels.pop_back();
  EXPECT_THROW((void)FamilyClassifier::train(mismatched, good, tiny_cnn(),
                                             nn::make_train_config(1, 4),
                                             1e-3, rng),
               std::invalid_argument);
}

TEST(FamilyClassifier, SaveLoadRoundTripsPredictions) {
  auto classifier = trained_classifier(3);
  std::stringstream stream;
  classifier.save(stream);
  auto loaded = FamilyClassifier::load(stream);
  for (std::size_t c = 0; c < dataset::kFamilyCount; ++c) {
    const auto features = features_for_class(c, 500 + c);
    EXPECT_EQ(loaded.predict(features), classifier.predict(features));
  }
}

TEST(FamilyClassifier, TrainingLossDecreases) {
  auto classifier = trained_classifier(4);
  const auto& dbl_losses = classifier.dbl_report().epoch_losses;
  ASSERT_GE(dbl_losses.size(), 2U);
  EXPECT_LT(dbl_losses.back(), dbl_losses.front());
}

}  // namespace
}  // namespace soteria::core
