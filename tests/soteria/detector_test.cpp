#include "soteria/detector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

namespace soteria::core {
namespace {

// Clean data: tight cluster around a fixed sparse pattern. Anomalies:
// a shifted pattern.
math::Matrix cluster(std::size_t rows, float center, std::uint64_t seed,
                     std::size_t dim = 24) {
  math::Rng rng(seed);
  math::Matrix m(rows, dim);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      const float base = (c % 4 == 0) ? center : 0.1F;
      m(r, c) = base + static_cast<float>(rng.normal(0.0, 0.02));
    }
  }
  return m;
}

nn::AutoencoderConfig tiny_arch() {
  nn::AutoencoderConfig config;
  config.hidden_dims = {16, 24, 16};
  return config;
}

AeDetector trained_detector(double alpha = 1.0) {
  math::Rng rng(1);
  const auto train = cluster(64, 1.0F, 2);
  const auto calibration = cluster(16, 1.0F, 3);
  return AeDetector::train(train, calibration, tiny_arch(),
                           nn::make_train_config(40, 16), alpha, 1e-2, rng);
}

TEST(AeDetector, SeparatesShiftedCluster) {
  auto detector = trained_detector();
  const auto clean = cluster(8, 1.0F, 4);
  const auto anomalous = cluster(8, 3.0F, 5);
  const auto clean_scores = detector.scores(clean);
  const auto anomaly_scores = detector.scores(anomalous);
  double clean_mean = 0.0;
  double anomaly_mean = 0.0;
  for (double v : clean_scores) clean_mean += v;
  for (double v : anomaly_scores) anomaly_mean += v;
  EXPECT_GT(anomaly_mean / 8.0, 3.0 * clean_mean / 8.0);
  EXPECT_TRUE(detector.is_adversarial(anomalous));
}

TEST(AeDetector, CleanSamplesScoreNearCalibrationMean) {
  auto detector = trained_detector();
  const auto clean = cluster(16, 1.0F, 6);
  const double score = detector.sample_error(clean);
  EXPECT_LT(score, detector.training_mean() +
                       4.0 * detector.training_stddev() + 0.5);
}

TEST(AeDetector, ThresholdFormula) {
  auto detector = trained_detector(1.5);
  EXPECT_DOUBLE_EQ(detector.threshold(), detector.training_mean() +
                                             1.5 * detector.training_stddev());
  EXPECT_DOUBLE_EQ(detector.alpha(), 1.5);
}

TEST(AeDetector, SetAlphaRederivesThreshold) {
  auto detector = trained_detector();
  const double mean = detector.training_mean();
  const double stddev = detector.training_stddev();
  detector.set_alpha(0.0);
  EXPECT_DOUBLE_EQ(detector.threshold(), mean);
  detector.set_alpha(2.0);
  EXPECT_DOUBLE_EQ(detector.threshold(), mean + 2.0 * stddev);
  EXPECT_THROW(detector.set_alpha(-0.5), std::invalid_argument);
}

TEST(AeDetector, TrainValidation) {
  math::Rng rng(7);
  const auto good = cluster(16, 1.0F, 8);
  const auto calibration = cluster(8, 1.0F, 9);
  EXPECT_THROW((void)AeDetector::train(math::Matrix{}, calibration,
                                       tiny_arch(),
                                       nn::make_train_config(1, 4), 1.0,
                                       1e-2, rng),
               std::invalid_argument);
  EXPECT_THROW((void)AeDetector::train(good, math::Matrix(8, 3),
                                       tiny_arch(),
                                       nn::make_train_config(1, 4), 1.0,
                                       1e-2, rng),
               std::invalid_argument);
  EXPECT_THROW((void)AeDetector::train(good, cluster(2, 1.0F, 10),
                                       tiny_arch(),
                                       nn::make_train_config(1, 4), 1.0,
                                       1e-2, rng),
               std::invalid_argument);
  EXPECT_THROW((void)AeDetector::train(good, calibration, tiny_arch(),
                                       nn::make_train_config(1, 4), -1.0,
                                       1e-2, rng),
               std::invalid_argument);
}

TEST(AeDetector, ScoresValidateWidth) {
  auto detector = trained_detector();
  EXPECT_THROW((void)detector.scores(math::Matrix(2, 7)),
               std::invalid_argument);
  EXPECT_THROW((void)detector.sample_error(math::Matrix(0, 24)),
               std::invalid_argument);
}

TEST(AeDetector, UntrainedDetectorThrows) {
  AeDetector detector;
  EXPECT_THROW((void)detector.scores(math::Matrix(1, 4)),
               std::logic_error);
}

TEST(AeDetector, TrainingLossDecreases) {
  auto detector = trained_detector();
  const auto& losses = detector.train_report().epoch_losses;
  ASSERT_GE(losses.size(), 2U);
  EXPECT_LT(losses.back(), losses.front());
}

TEST(AeDetector, SaveLoadRoundTripsScores) {
  auto detector = trained_detector();
  std::stringstream stream;
  detector.save(stream);
  auto loaded = AeDetector::load(stream);
  EXPECT_DOUBLE_EQ(loaded.threshold(), detector.threshold());
  const auto probe = cluster(4, 1.0F, 11);
  EXPECT_EQ(loaded.scores(probe), detector.scores(probe));
  EXPECT_EQ(loaded.reconstruction_errors(probe),
            detector.reconstruction_errors(probe));
}

TEST(AeDetector, LoadRejectsGarbage) {
  std::stringstream stream;
  stream.write("nonsense", 8);
  EXPECT_THROW((void)AeDetector::load(stream), std::runtime_error);
}

// A calibration set whose rows are bit-identical produces identical
// reconstruction-error scores: sigma must collapse to exactly 0 and the
// threshold to exactly the mean — never NaN, never a spurious epsilon
// from FP cancellation in the variance.
TEST(AeDetector, DegenerateCalibrationYieldsMeanThreshold) {
  math::Rng rng(12);
  const auto train = cluster(64, 1.0F, 13);
  math::Matrix calibration(16, 24);
  for (std::size_t r = 0; r < calibration.rows(); ++r) {
    for (std::size_t c = 0; c < calibration.cols(); ++c) {
      calibration(r, c) = (c % 4 == 0) ? 1.0F : 0.1F;
    }
  }
  auto detector =
      AeDetector::train(train, calibration, tiny_arch(),
                        nn::make_train_config(10, 16), 1.0, 1e-2, rng);
  EXPECT_TRUE(std::isfinite(detector.threshold()));
  EXPECT_FALSE(std::isnan(detector.threshold()));
  EXPECT_DOUBLE_EQ(detector.training_stddev(), 0.0);
  EXPECT_EQ(detector.threshold(), detector.training_mean());

  // Re-deriving the threshold from any alpha keeps Th == mu.
  detector.set_alpha(100.0);
  EXPECT_EQ(detector.threshold(), detector.training_mean());
}

TEST(AeDetector, EmptyCalibrationSetIsRejected) {
  math::Rng rng(14);
  const auto train = cluster(16, 1.0F, 15);
  EXPECT_THROW(
      {
        try {
          (void)AeDetector::train(train, math::Matrix(0, 24), tiny_arch(),
                                  nn::make_train_config(1, 4), 1.0, 1e-2,
                                  rng);
        } catch (const std::invalid_argument& e) {
          EXPECT_NE(std::string(e.what()).find("empty calibration set"),
                    std::string::npos);
          throw;
        }
      },
      std::invalid_argument);
  // A default-constructed (0 x 0) matrix hits the same guard.
  EXPECT_THROW((void)AeDetector::train(train, math::Matrix{}, tiny_arch(),
                                       nn::make_train_config(1, 4), 1.0,
                                       1e-2, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace soteria::core
