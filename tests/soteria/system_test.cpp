#include "soteria/system.h"

#include <gtest/gtest.h>

#include <sstream>

#include "cfg/gea.h"
#include "dataset/adversarial.h"
#include "dataset/generator.h"
#include "soteria/presets.h"

namespace soteria::core {
namespace {

// Shared tiny experiment: built once for the whole suite because
// end-to-end training dominates test time.
struct SystemFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    dataset::DatasetConfig data_config;
    data_config.scale = 0.008;
    math::Rng rng(17);
    data = new dataset::Dataset(dataset::generate_dataset(data_config, rng));
    SoteriaConfig config = tiny_config();
    config.seed = 17;
    system = new SoteriaSystem(SoteriaSystem::train(data->train, config));
  }
  static void TearDownTestSuite() {
    delete system;
    delete data;
    system = nullptr;
    data = nullptr;
  }

  static dataset::Dataset* data;
  static SoteriaSystem* system;
};

dataset::Dataset* SystemFixture::data = nullptr;
SoteriaSystem* SystemFixture::system = nullptr;

TEST_F(SystemFixture, TrainsAllComponents) {
  EXPECT_GT(system->pipeline().combined_dimension(), 0U);
  EXPECT_GT(system->detector().threshold(), 0.0);
  EXPECT_GT(system->detector().train_report().epoch_losses.size(), 0U);
}

TEST_F(SystemFixture, AnalyzeProducesCompleteVerdict) {
  math::Rng rng(18);
  const auto verdict = system->analyze(data->test.front().cfg, rng);
  EXPECT_GT(verdict.reconstruction_error, 0.0);
  EXPECT_LT(dataset::family_index(verdict.predicted),
            dataset::kFamilyCount);
}

TEST_F(SystemFixture, VerdictConsistentWithThreshold) {
  math::Rng rng(19);
  for (std::size_t i = 0; i < std::min<std::size_t>(data->test.size(), 10);
       ++i) {
    const auto verdict = system->analyze(data->test[i].cfg, rng);
    EXPECT_EQ(verdict.adversarial,
              verdict.reconstruction_error >
                  system->detector().threshold());
  }
}

TEST_F(SystemFixture, ClassifierBeatsChanceOnCleanTest) {
  math::Rng rng(20);
  std::size_t correct = 0;
  const std::size_t n = std::min<std::size_t>(data->test.size(), 40);
  for (std::size_t i = 0; i < n; ++i) {
    const auto verdict = system->analyze(data->test[i].cfg, rng);
    correct += verdict.predicted == data->test[i].family;
  }
  // Chance is ~25% on 4 classes (majority class ~66%); even the tiny
  // preset should beat a coin flip comfortably.
  EXPECT_GT(correct * 2, n);
}

TEST_F(SystemFixture, GeaAttackScoresHigherThanOriginal) {
  math::Rng rng(21);
  // Average over several attacks: GEA should raise the detector score.
  double clean_sum = 0.0;
  double attacked_sum = 0.0;
  int count = 0;
  const auto targets = dataset::select_all_targets(data->train);
  for (std::size_t i = 0; i < std::min<std::size_t>(data->test.size(), 8);
       ++i) {
    const auto& sample = data->test[i];
    const auto& target = targets[sample.family == dataset::Family::kBenign
                                     ? 7   // Mirai medium
                                     : 1]  // Benign medium
    ;
    const auto attack = cfg::gea_combine(sample.cfg, target.cfg);
    clean_sum += system->analyze(sample.cfg, rng).reconstruction_error;
    attacked_sum +=
        system->analyze(attack.combined, rng).reconstruction_error;
    ++count;
  }
  EXPECT_GT(attacked_sum / count, clean_sum / count);
}

TEST_F(SystemFixture, ExtractMatchesPipelineShape) {
  math::Rng rng(22);
  const auto features = system->extract(data->test.front().cfg, rng);
  EXPECT_EQ(features.dbl.size(),
            system->config().pipeline.walk.walks_per_labeling);
  EXPECT_EQ(features.pooled_combined().size(),
            system->pipeline().combined_dimension());
}

TEST_F(SystemFixture, SaveLoadRoundTripsVerdicts) {
  std::stringstream stream;
  system->save(stream);
  auto loaded = SoteriaSystem::load(stream);
  EXPECT_DOUBLE_EQ(loaded.detector().threshold(),
                   system->detector().threshold());
  for (std::size_t i = 0; i < std::min<std::size_t>(data->test.size(), 5);
       ++i) {
    math::Rng a(100 + i);
    math::Rng b(100 + i);
    const auto va = system->analyze(data->test[i].cfg, a);
    const auto vb = loaded.analyze(data->test[i].cfg, b);
    EXPECT_EQ(va.adversarial, vb.adversarial);
    EXPECT_EQ(va.predicted, vb.predicted);
    EXPECT_DOUBLE_EQ(va.reconstruction_error, vb.reconstruction_error);
  }
}

// --- Corrupt-stream coverage ------------------------------------------
// Every loader must reject truncated streams and implausible length
// prefixes (io::kMaxContainerElements guard) instead of allocating or
// reading garbage.

std::string save_system(const SoteriaSystem& system) {
  std::stringstream stream;
  system.save(stream);
  return stream.str();
}

/// Overwrites `count` bytes at `offset` with 0xFF — turns a uint64
/// length prefix into 2^64 - 1, far beyond kMaxContainerElements.
std::string corrupt_bytes(std::string bytes, std::size_t offset,
                          std::size_t count = 8) {
  EXPECT_LE(offset + count, bytes.size());
  for (std::size_t i = 0; i < count; ++i) {
    bytes[offset + i] = static_cast<char>(0xFF);
  }
  return bytes;
}

TEST_F(SystemFixture, LoadRejectsBadMagic) {
  std::string bytes = save_system(*system);
  bytes[0] = static_cast<char>(~bytes[0]);
  std::istringstream in(bytes);
  EXPECT_THROW((void)SoteriaSystem::load(in), std::runtime_error);
}

TEST_F(SystemFixture, LoadRejectsTruncatedStreams) {
  const std::string bytes = save_system(*system);
  ASSERT_GT(bytes.size(), 44U);
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{3}, bytes.size() / 4, bytes.size() / 2,
        3 * bytes.size() / 4, bytes.size() - 1}) {
    std::istringstream in(bytes.substr(0, cut));
    EXPECT_THROW((void)SoteriaSystem::load(in), std::runtime_error)
        << "truncated to " << cut << " of " << bytes.size() << " bytes";
  }
}

TEST_F(SystemFixture, LoadRejectsImplausibleContainerSize) {
  // System header: magic(4) + 3 doubles(24) + 2 uint64(16) = 44 bytes.
  // The pipeline section starts there; its gram_sizes length prefix
  // sits 24 bytes in (length_multiplier + walks + top_k).
  const std::string bytes = save_system(*system);
  std::istringstream in(corrupt_bytes(bytes, 44 + 24));
  EXPECT_THROW((void)SoteriaSystem::load(in), std::runtime_error);
}

TEST_F(SystemFixture, PipelineLoadRejectsCorruptStreams) {
  std::stringstream stream;
  system->pipeline().save(stream);
  const std::string bytes = stream.str();

  std::istringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW((void)features::FeaturePipeline::load(truncated),
               std::runtime_error);

  // gram_sizes length prefix at offset 24 (after length_multiplier,
  // walks_per_labeling, top_k).
  std::istringstream corrupted(corrupt_bytes(bytes, 24));
  EXPECT_THROW((void)features::FeaturePipeline::load(corrupted),
               std::runtime_error);
}

TEST_F(SystemFixture, DetectorLoadRejectsCorruptStreams) {
  std::stringstream stream;
  system->detector().save(stream);
  const std::string bytes = stream.str();

  std::istringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW((void)AeDetector::load(truncated), std::runtime_error);

  // hidden_dims length prefix at offset 8 (after input_dim).
  std::istringstream corrupted(corrupt_bytes(bytes, 8));
  EXPECT_THROW((void)AeDetector::load(corrupted), std::runtime_error);
}

TEST_F(SystemFixture, ClassifierLoadRejectsCorruptStreams) {
  std::stringstream stream;
  system->classifier().save(stream);
  const std::string bytes = stream.str();

  std::istringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW((void)FamilyClassifier::load(truncated), std::runtime_error);

  // The DBL model's parameter stream starts after the two 56-byte
  // architecture blocks; clobbering its magic must be rejected.
  std::istringstream corrupted(corrupt_bytes(bytes, 112, 4));
  EXPECT_THROW((void)FamilyClassifier::load(corrupted), std::runtime_error);
}

TEST(SoteriaConfigValidation, CatchesBadKnobs) {
  SoteriaConfig config = tiny_config();
  EXPECT_NO_THROW(validate(config));
  config.detector_alpha = -1.0;
  EXPECT_THROW(validate(config), std::invalid_argument);

  config = tiny_config();
  config.classifier_learning_rate = 0.0;
  EXPECT_THROW(validate(config), std::invalid_argument);

  config = tiny_config();
  config.training_vectors_per_sample =
      config.pipeline.walk.walks_per_labeling + 1;
  EXPECT_THROW(validate(config), std::invalid_argument);

  config = tiny_config();
  config.calibration_fraction = 0.0;
  EXPECT_THROW(validate(config), std::invalid_argument);

  config = tiny_config();
  config.num_threads = runtime::kMaxThreads + 1;
  EXPECT_THROW(validate(config), std::invalid_argument);
}

TEST(SoteriaSystemTrain, RejectsEmptyTrainingSet) {
  EXPECT_THROW((void)SoteriaSystem::train({}, tiny_config()),
               std::invalid_argument);
}

TEST(Presets, AllValidate) {
  EXPECT_NO_THROW(validate(paper_config()));
  EXPECT_NO_THROW(validate(cpu_scaled_config()));
  EXPECT_NO_THROW(validate(tiny_config()));
}

TEST(Presets, PaperConfigMatchesPublication) {
  const auto config = paper_config();
  EXPECT_EQ(config.pipeline.top_k, 500U);
  EXPECT_EQ(config.pipeline.walk.walks_per_labeling, 10U);
  EXPECT_DOUBLE_EQ(config.pipeline.walk.length_multiplier, 5.0);
  EXPECT_EQ(config.pipeline.gram_sizes,
            (std::vector<std::size_t>{2, 3, 4}));
  EXPECT_EQ(config.autoencoder.hidden_dims,
            (std::vector<std::size_t>{2000, 3000, 2000}));
  EXPECT_EQ(config.cnn.filters, 46U);
  EXPECT_EQ(config.cnn.dense_units, 512U);
  EXPECT_EQ(config.detector_training.epochs, 100U);
  EXPECT_EQ(config.detector_training.batch_size, 128U);
  EXPECT_DOUBLE_EQ(config.detector_alpha, 1.0);
}

TEST(PooledMatrix, ValidatesBundle) {
  features::SampleFeatures empty;
  EXPECT_THROW((void)pooled_matrix(empty), std::invalid_argument);
  features::SampleFeatures ok;
  ok.pooled_dbl = {1.0F, 2.0F};
  ok.pooled_lbl = {3.0F};
  const auto m = pooled_matrix(ok);
  EXPECT_EQ(m.rows(), 1U);
  EXPECT_EQ(m.cols(), 3U);
}

}  // namespace
}  // namespace soteria::core
