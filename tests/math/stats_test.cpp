#include "math/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace soteria::math {
namespace {

TEST(Stats, MeanBasics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, StddevIsPopulation) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, StddevDegenerateCases) {
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{3.0, 3.0, 3.0}), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 7.0);
  EXPECT_THROW((void)min(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW((void)max(std::vector<double>{}), std::invalid_argument);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_THROW((void)median(std::vector<double>{}), std::invalid_argument);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
  EXPECT_THROW((void)percentile(xs, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(xs, 101.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(std::vector<double>{}, 50.0),
               std::invalid_argument);
}

TEST(Stats, PercentileSingleElement) {
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{7.0}, 75.0), 7.0);
}

TEST(Stats, HistogramCountsAndClamps) {
  const std::vector<double> xs{-5.0, 0.1, 0.2, 0.55, 0.9, 42.0};
  const auto h = histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2U);
  EXPECT_EQ(h[0], 3U);  // -5 clamps in, 0.1, 0.2
  EXPECT_EQ(h[1], 3U);  // 0.55, 0.9, 42 clamps in
}

TEST(Stats, HistogramValidation) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)histogram(xs, 0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW((void)histogram(xs, 1.0, 1.0, 3), std::invalid_argument);
}

TEST(Stats, SummarizeBundlesEverything) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 100.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5U);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_GT(s.stddev, 0.0);
}

TEST(Stats, SummarizeEmptyIsZeroed) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0U);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace soteria::math
