#include "math/pca.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.h"

namespace soteria::math {
namespace {

// Data stretched along a known direction: PCA must recover it.
Matrix anisotropic_data(std::size_t n, Rng& rng) {
  Matrix data(n, 3);
  for (std::size_t i = 0; i < n; ++i) {
    const double main_axis = rng.normal(0.0, 10.0);  // along (1,1,0)/sqrt2
    const double noise1 = rng.normal(0.0, 0.1);
    const double noise2 = rng.normal(0.0, 0.1);
    data(i, 0) = static_cast<float>(main_axis + noise1);
    data(i, 1) = static_cast<float>(main_axis - noise1);
    data(i, 2) = static_cast<float>(noise2 + 5.0);  // offset, tiny variance
  }
  return data;
}

TEST(Pca, RecoversDominantDirection) {
  Rng rng(1);
  const auto data = anisotropic_data(500, rng);
  const auto pca = Pca::fit(data, 1);
  const auto& c = pca.components();
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  // Direction is +-(1,1,0)/sqrt(2).
  EXPECT_NEAR(std::abs(c(0, 0)), inv_sqrt2, 0.02);
  EXPECT_NEAR(std::abs(c(0, 1)), inv_sqrt2, 0.02);
  EXPECT_NEAR(std::abs(c(0, 2)), 0.0, 0.05);
}

TEST(Pca, ExplainedVarianceRatioDescendsAndSums) {
  Rng rng(2);
  const auto data = anisotropic_data(500, rng);
  const auto pca = Pca::fit(data, 3);
  const auto& ratios = pca.explained_variance_ratio();
  ASSERT_EQ(ratios.size(), 3U);
  EXPECT_GE(ratios[0], ratios[1]);
  EXPECT_GE(ratios[1], ratios[2] - 1e-9);
  EXPECT_GT(ratios[0], 0.95);  // dominant direction carries ~all variance
  double total = 0.0;
  for (double r : ratios) total += r;
  EXPECT_NEAR(total, 1.0, 0.02);
}

TEST(Pca, ComponentsAreOrthonormal) {
  Rng rng(3);
  Matrix data(200, 5);
  data.fill_normal(rng, 0.0F, 1.0F);
  const auto pca = Pca::fit(data, 3);
  const auto& c = pca.components();
  for (std::size_t i = 0; i < 3; ++i) {
    double norm = 0.0;
    for (std::size_t j = 0; j < 5; ++j) norm += c(i, j) * c(i, j);
    EXPECT_NEAR(norm, 1.0, 1e-4);
    for (std::size_t k = i + 1; k < 3; ++k) {
      double dot = 0.0;
      for (std::size_t j = 0; j < 5; ++j) dot += c(i, j) * c(k, j);
      EXPECT_NEAR(dot, 0.0, 1e-2);
    }
  }
}

TEST(Pca, TransformCentersData) {
  Rng rng(4);
  const auto data = anisotropic_data(300, rng);
  const auto pca = Pca::fit(data, 2);
  const auto scores = pca.transform(data);
  ASSERT_EQ(scores.rows(), 300U);
  ASSERT_EQ(scores.cols(), 2U);
  double mean0 = 0.0;
  for (std::size_t i = 0; i < scores.rows(); ++i) mean0 += scores(i, 0);
  mean0 /= static_cast<double>(scores.rows());
  EXPECT_NEAR(mean0, 0.0, 1e-3);
}

TEST(Pca, TransformValidatesWidth) {
  Rng rng(5);
  Matrix data(50, 4);
  data.fill_normal(rng, 0.0F, 1.0F);
  const auto pca = Pca::fit(data, 2);
  EXPECT_THROW((void)pca.transform(Matrix(3, 5)), std::invalid_argument);
}

TEST(Pca, FitValidatesArguments) {
  Matrix data(10, 4, 1.0F);
  EXPECT_THROW((void)Pca::fit(data, 0), std::invalid_argument);
  EXPECT_THROW((void)Pca::fit(data, 5), std::invalid_argument);
  EXPECT_THROW((void)Pca::fit(Matrix(1, 4), 2), std::invalid_argument);
}

TEST(Pca, DeterministicAcrossCalls) {
  Rng rng(6);
  const auto data = anisotropic_data(100, rng);
  const auto a = Pca::fit(data, 2);
  const auto b = Pca::fit(data, 2);
  EXPECT_EQ(a.components(), b.components());
}

}  // namespace
}  // namespace soteria::math
