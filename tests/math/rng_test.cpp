#include "math/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

namespace soteria::math {
namespace {

TEST(SplitMix, IsDeterministic) {
  EXPECT_EQ(split_mix64(42), split_mix64(42));
  EXPECT_NE(split_mix64(42), split_mix64(43));
}

TEST(SplitMix, SpreadsSmallInputs) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(split_mix64(i));
  EXPECT_EQ(outputs.size(), 1000U);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7);
  Rng b(8);
  int differences = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform_int(0, 1'000'000) != b.uniform_int(0, 1'000'000)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 40);
}

TEST(Rng, SeedAccessor) { EXPECT_EQ(Rng(99).seed(), 99U); }

TEST(Rng, ForkIsDecorrelated) {
  Rng parent(7);
  Rng child_a = parent.fork(0);
  Rng child_b = parent.fork(1);
  int matches = 0;
  for (int i = 0; i < 50; ++i) {
    if (child_a.uniform_int(0, 1'000'000) ==
        child_b.uniform_int(0, 1'000'000)) {
      ++matches;
    }
  }
  EXPECT_LT(matches, 5);
}

TEST(Rng, ForkIsDeterministic) {
  Rng p1(7);
  Rng p2(7);
  Rng a = p1.fork(3);
  Rng b = p2.fork(3);
  EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
}

TEST(Rng, ChildMatchesForkStream) {
  // child(i) is the const counterpart of fork(i): same derivation, so
  // existing fork-based seeds stay valid when callers migrate to the
  // parallel engine's per-index children.
  Rng parent(7);
  const Rng const_parent(7);
  for (std::uint64_t i = 0; i < 16; ++i) {
    Rng forked = parent.fork(i);
    Rng child = const_parent.child(i);
    EXPECT_EQ(forked.seed(), child.seed());
    EXPECT_EQ(forked.engine()(), child.engine()());
  }
}

TEST(Rng, ChildIgnoresParentStreamPosition) {
  Rng moved(7);
  for (int i = 0; i < 100; ++i) (void)moved.uniform(0.0, 1.0);
  const Rng fresh(7);
  Rng a = moved.child(3);
  Rng b = fresh.child(3);
  EXPECT_EQ(a.engine()(), b.engine()());
}

TEST(Rng, ChildGoldenValues) {
  // Raw mt19937_64 output is fully specified by the standard, so these
  // constants pin the child derivation across platforms and refactors.
  // Any change here silently re-randomizes every parallel experiment.
  const Rng parent(42);
  struct Golden {
    std::uint64_t index;
    std::uint64_t seed;
    std::uint64_t first;
    std::uint64_t second;
  };
  constexpr Golden kGolden[] = {
      {0, 10019832070836786748ULL, 13391204893984907350ULL,
       11656632831096993951ULL},
      {1, 4778552290372666540ULL, 598754134537356000ULL,
       10486447582495503503ULL},
      {2, 6346331249922950202ULL, 6790782481610014895ULL,
       16605993338596724546ULL},
  };
  for (const auto& golden : kGolden) {
    Rng child = parent.child(golden.index);
    EXPECT_EQ(child.seed(), golden.seed);
    EXPECT_EQ(child.engine()(), golden.first);
    EXPECT_EQ(child.engine()(), golden.second);
  }
}

TEST(Rng, ChildStreamsArePairwiseNonOverlapping) {
  // The parallel engine hands child(i) to sample i; if two children
  // ever emitted the same raw engine values, samples would correlate.
  // Check that the first 1e5 draws of several children (plus the parent
  // itself) are globally distinct.
  Rng parent(123);
  constexpr std::size_t kDraws = 100000;
  constexpr std::uint64_t kChildren = 4;
  std::unordered_set<std::uint64_t> seen;
  seen.reserve((kChildren + 1) * kDraws);
  for (std::size_t i = 0; i < kDraws; ++i) {
    EXPECT_TRUE(seen.insert(parent.engine()()).second);
  }
  const Rng fresh(123);
  for (std::uint64_t c = 0; c < kChildren; ++c) {
    Rng child = fresh.child(c);
    for (std::size_t i = 0; i < kDraws; ++i) {
      const bool inserted = seen.insert(child.engine()()).second;
      EXPECT_TRUE(inserted) << "child " << c << " draw " << i;
      if (!inserted) return;  // one collision report is enough
    }
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(1);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntThrowsOnInvertedRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, IndexStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(7), 7U);
}

TEST(Rng, IndexThrowsOnEmptyRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.index(0), std::invalid_argument);
}

TEST(Rng, UniformRealRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformThrowsOnBadRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform(1.0, 1.0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(1);
  double sum = 0.0;
  double sumsq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / kN;
  const double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, NormalThrowsOnNegativeStddev) {
  Rng rng(1);
  EXPECT_THROW((void)rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(1);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliThrowsOutOfRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.bernoulli(-0.1), std::invalid_argument);
  EXPECT_THROW((void)rng.bernoulli(1.1), std::invalid_argument);
}

TEST(Rng, PositiveGeometricIsPositive) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.positive_geometric(0.5), 1);
}

TEST(Rng, PositiveGeometricThrows) {
  Rng rng(1);
  EXPECT_THROW((void)rng.positive_geometric(0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.positive_geometric(1.5), std::invalid_argument);
}

TEST(Rng, ChoicePicksExistingElements) {
  Rng rng(1);
  const std::vector<int> items{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int v = rng.choice(items);
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(1);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = items;
  rng.shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, copy);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(1);
  const auto p = rng.permutation(20);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 20U);
  EXPECT_EQ(*seen.begin(), 0U);
  EXPECT_EQ(*seen.rbegin(), 19U);
}

}  // namespace
}  // namespace soteria::math
