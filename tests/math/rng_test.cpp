#include "math/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace soteria::math {
namespace {

TEST(SplitMix, IsDeterministic) {
  EXPECT_EQ(split_mix64(42), split_mix64(42));
  EXPECT_NE(split_mix64(42), split_mix64(43));
}

TEST(SplitMix, SpreadsSmallInputs) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(split_mix64(i));
  EXPECT_EQ(outputs.size(), 1000U);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7);
  Rng b(8);
  int differences = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform_int(0, 1'000'000) != b.uniform_int(0, 1'000'000)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 40);
}

TEST(Rng, SeedAccessor) { EXPECT_EQ(Rng(99).seed(), 99U); }

TEST(Rng, ForkIsDecorrelated) {
  Rng parent(7);
  Rng child_a = parent.fork(0);
  Rng child_b = parent.fork(1);
  int matches = 0;
  for (int i = 0; i < 50; ++i) {
    if (child_a.uniform_int(0, 1'000'000) ==
        child_b.uniform_int(0, 1'000'000)) {
      ++matches;
    }
  }
  EXPECT_LT(matches, 5);
}

TEST(Rng, ForkIsDeterministic) {
  Rng p1(7);
  Rng p2(7);
  Rng a = p1.fork(3);
  Rng b = p2.fork(3);
  EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(1);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntThrowsOnInvertedRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, IndexStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(7), 7U);
}

TEST(Rng, IndexThrowsOnEmptyRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.index(0), std::invalid_argument);
}

TEST(Rng, UniformRealRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformThrowsOnBadRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform(1.0, 1.0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(1);
  double sum = 0.0;
  double sumsq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / kN;
  const double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, NormalThrowsOnNegativeStddev) {
  Rng rng(1);
  EXPECT_THROW((void)rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(1);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliThrowsOutOfRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.bernoulli(-0.1), std::invalid_argument);
  EXPECT_THROW((void)rng.bernoulli(1.1), std::invalid_argument);
}

TEST(Rng, PositiveGeometricIsPositive) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.positive_geometric(0.5), 1);
}

TEST(Rng, PositiveGeometricThrows) {
  Rng rng(1);
  EXPECT_THROW((void)rng.positive_geometric(0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.positive_geometric(1.5), std::invalid_argument);
}

TEST(Rng, ChoicePicksExistingElements) {
  Rng rng(1);
  const std::vector<int> items{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int v = rng.choice(items);
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(1);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = items;
  rng.shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, copy);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(1);
  const auto p = rng.permutation(20);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 20U);
  EXPECT_EQ(*seen.begin(), 0U);
  EXPECT_EQ(*seen.rbegin(), 19U);
}

}  // namespace
}  // namespace soteria::math
