#include "math/matrix.h"

#include <gtest/gtest.h>

#include "math/rng.h"

namespace soteria::math {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  const Matrix m;
  EXPECT_EQ(m.rows(), 0U);
  EXPECT_EQ(m.cols(), 0U);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, FillConstructor) {
  const Matrix m(2, 3, 1.5F);
  EXPECT_EQ(m.rows(), 2U);
  EXPECT_EQ(m.cols(), 3U);
  EXPECT_EQ(m.size(), 6U);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(m(r, c), 1.5F);
  }
}

TEST(Matrix, ValueConstructorRowMajor) {
  const Matrix m(2, 2, {1.0F, 2.0F, 3.0F, 4.0F});
  EXPECT_FLOAT_EQ(m(0, 0), 1.0F);
  EXPECT_FLOAT_EQ(m(0, 1), 2.0F);
  EXPECT_FLOAT_EQ(m(1, 0), 3.0F);
  EXPECT_FLOAT_EQ(m(1, 1), 4.0F);
}

TEST(Matrix, ValueConstructorSizeMismatchThrows) {
  EXPECT_THROW(Matrix(2, 2, {1.0F, 2.0F}), std::invalid_argument);
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW((void)m.at(1, 1));
}

TEST(Matrix, RowSpanWritesThrough) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 9.0F;
  EXPECT_FLOAT_EQ(m(1, 2), 9.0F);
  EXPECT_THROW((void)m.row(2), std::out_of_range);
}

TEST(Matrix, AddSubtract) {
  Matrix a(1, 3, {1.0F, 2.0F, 3.0F});
  const Matrix b(1, 3, {10.0F, 20.0F, 30.0F});
  a += b;
  EXPECT_FLOAT_EQ(a(0, 1), 22.0F);
  a -= b;
  EXPECT_FLOAT_EQ(a(0, 1), 2.0F);
}

TEST(Matrix, AddShapeMismatchThrows) {
  Matrix a(1, 3);
  const Matrix b(3, 1);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
}

TEST(Matrix, Hadamard) {
  const Matrix a(1, 3, {1.0F, 2.0F, 3.0F});
  const Matrix b(1, 3, {2.0F, 3.0F, 4.0F});
  const Matrix c = a.hadamard(b);
  EXPECT_FLOAT_EQ(c(0, 0), 2.0F);
  EXPECT_FLOAT_EQ(c(0, 2), 12.0F);
  EXPECT_THROW((void)a.hadamard(Matrix(2, 2)), std::invalid_argument);
}

TEST(Matrix, ScalarScale) {
  Matrix a(1, 2, {2.0F, -4.0F});
  a *= 0.5F;
  EXPECT_FLOAT_EQ(a(0, 0), 1.0F);
  EXPECT_FLOAT_EQ(a(0, 1), -2.0F);
}

TEST(Matrix, AddRowVectorBroadcasts) {
  Matrix m(2, 2, {1.0F, 2.0F, 3.0F, 4.0F});
  const std::vector<float> v{10.0F, 20.0F};
  m.add_row_vector(v);
  EXPECT_FLOAT_EQ(m(0, 0), 11.0F);
  EXPECT_FLOAT_EQ(m(1, 1), 24.0F);
  const std::vector<float> bad{1.0F};
  EXPECT_THROW(m.add_row_vector(bad), std::invalid_argument);
}

TEST(Matrix, Transpose) {
  const Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3U);
  EXPECT_EQ(t.cols(), 2U);
  EXPECT_FLOAT_EQ(t(2, 1), 6.0F);
  EXPECT_FLOAT_EQ(t(0, 1), 4.0F);
}

TEST(Matrix, ColumnSums) {
  const Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const auto sums = m.column_sums();
  ASSERT_EQ(sums.size(), 3U);
  EXPECT_FLOAT_EQ(sums[0], 5.0F);
  EXPECT_FLOAT_EQ(sums[2], 9.0F);
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix m(1, 2, {3.0F, 4.0F});
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(Matrix, ApplyTransformsElements) {
  Matrix m(1, 3, {1.0F, -2.0F, 3.0F});
  m.apply([](float x) { return x * x; });
  EXPECT_FLOAT_EQ(m(0, 1), 4.0F);
}

TEST(Matrix, FillRandomRanges) {
  Rng rng(1);
  Matrix m(10, 10);
  m.fill_uniform(rng, -1.0F, 1.0F);
  for (float x : m.data()) {
    EXPECT_GE(x, -1.0F);
    EXPECT_LT(x, 1.0F);
  }
}

TEST(Matmul, MatchesHandComputedProduct) {
  const Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = matmul(a, b);
  ASSERT_EQ(c.rows(), 2U);
  ASSERT_EQ(c.cols(), 2U);
  EXPECT_FLOAT_EQ(c(0, 0), 58.0F);
  EXPECT_FLOAT_EQ(c(0, 1), 64.0F);
  EXPECT_FLOAT_EQ(c(1, 0), 139.0F);
  EXPECT_FLOAT_EQ(c(1, 1), 154.0F);
}

TEST(Matmul, ThrowsOnDimensionMismatch) {
  EXPECT_THROW((void)matmul(Matrix(2, 3), Matrix(2, 3)),
               std::invalid_argument);
}

TEST(Matmul, VariantsAgreeWithExplicitTransposes) {
  Rng rng(3);
  Matrix a(4, 6);
  Matrix b(6, 5);
  a.fill_normal(rng, 0.0F, 1.0F);
  b.fill_normal(rng, 0.0F, 1.0F);
  const Matrix reference = matmul(a, b);

  const Matrix via_bt = matmul_bt(a, b.transposed());
  const Matrix via_at = matmul_at(a.transposed(), b);
  for (std::size_t r = 0; r < reference.rows(); ++r) {
    for (std::size_t c = 0; c < reference.cols(); ++c) {
      EXPECT_NEAR(via_bt(r, c), reference(r, c), 1e-4);
      EXPECT_NEAR(via_at(r, c), reference(r, c), 1e-4);
    }
  }
}

TEST(Matmul, BtAtThrowOnMismatch) {
  EXPECT_THROW((void)matmul_bt(Matrix(2, 3), Matrix(4, 5)),
               std::invalid_argument);
  EXPECT_THROW((void)matmul_at(Matrix(2, 3), Matrix(4, 5)),
               std::invalid_argument);
}

TEST(Matvec, MatchesMatmul) {
  const Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const std::vector<float> x{1.0F, 0.5F, 2.0F};
  const auto y = matvec(m, x);
  ASSERT_EQ(y.size(), 2U);
  EXPECT_FLOAT_EQ(y[0], 8.0F);
  EXPECT_FLOAT_EQ(y[1], 18.5F);
  const std::vector<float> bad{1.0F};
  EXPECT_THROW((void)matvec(m, bad), std::invalid_argument);
}

TEST(Matrix, EqualityIsStructural) {
  const Matrix a(1, 2, {1.0F, 2.0F});
  const Matrix b(1, 2, {1.0F, 2.0F});
  const Matrix c(1, 2, {1.0F, 3.0F});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace soteria::math
