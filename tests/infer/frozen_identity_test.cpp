// The frozen fused model's whole-system identity contract: FrozenNet
// must reproduce Sequential::infer bit-for-bit, and a frozen
// SoteriaSystem must emit verdicts bitwise-identical to the
// interpreted path — across thread counts, with and without the
// feature store, and through every analyze entry point. Scores are
// compared with EXPECT_EQ on the doubles: the documented tolerance is
// 0 ulp, because the fused path replicates the interpreted arithmetic
// operation for operation.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "dataset/generator.h"
#include "math/rng.h"
#include "nn/autoencoder.h"
#include "nn/cnn.h"
#include "nn/frozen.h"
#include "soteria/frozen.h"
#include "soteria/presets.h"
#include "soteria/system.h"
#include "store/feature_store.h"

namespace soteria::core {
namespace {

void expect_net_matches(const nn::Sequential& model, std::size_t input_dim,
                        std::size_t rows, math::Rng& rng) {
  const nn::FrozenNet net = nn::FrozenNet::compile(model, input_dim);
  EXPECT_EQ(net.output_dim(), model.output_dimension(input_dim));
  math::Matrix in(rows, input_dim);
  in.fill_uniform(rng, -1.5F, 1.5F);
  const math::Matrix oracle = model.infer(in);
  std::vector<float> fused(rows * net.output_dim(), -7.0F);
  nn::FrozenNet::Scratch scratch;
  net.infer_into(in.data().data(), rows, fused.data(), scratch);
  ASSERT_EQ(fused.size(), oracle.data().size());
  EXPECT_EQ(0, std::memcmp(fused.data(), oracle.data().data(),
                           fused.size() * sizeof(float)));
}

TEST(FrozenNetTest, CnnMatchesSequentialBitwise) {
  math::Rng rng(61);
  nn::CnnConfig arch;
  arch.input_length = 60;
  arch.filters = 6;
  arch.dense_units = 24;
  // Dropout layers are present in the built model and must compile
  // away as inference identities.
  nn::Sequential model = nn::build_cnn(arch, rng);
  for (const std::size_t rows : {1U, 3U, 8U}) {
    expect_net_matches(model, arch.input_length, rows, rng);
  }
}

TEST(FrozenNetTest, AutoencoderMatchesSequentialBitwise) {
  math::Rng rng(62);
  nn::AutoencoderConfig arch;
  arch.input_dim = 48;
  arch.hidden_dims = {32, 40, 32};
  nn::Sequential model = nn::build_autoencoder(arch, rng);
  for (const std::size_t rows : {1U, 5U}) {
    expect_net_matches(model, arch.input_dim, rows, rng);
  }
}

TEST(FrozenNetTest, ScratchIsReusableAcrossBatchSizes) {
  math::Rng rng(63);
  nn::AutoencoderConfig arch;
  arch.input_dim = 20;
  arch.hidden_dims = {16};
  nn::Sequential model = nn::build_autoencoder(arch, rng);
  const nn::FrozenNet net = nn::FrozenNet::compile(model, arch.input_dim);
  nn::FrozenNet::Scratch scratch;
  // Shrinking then growing the batch must not disturb results: buffers
  // are grow-only and fully overwritten per call.
  for (const std::size_t rows : {6U, 1U, 9U, 2U}) {
    math::Matrix in(rows, arch.input_dim);
    in.fill_uniform(rng, -1.0F, 1.0F);
    const math::Matrix oracle = model.infer(in);
    std::vector<float> fused(rows * net.output_dim());
    net.infer_into(in.data().data(), rows, fused.data(), scratch);
    EXPECT_EQ(0, std::memcmp(fused.data(), oracle.data().data(),
                             fused.size() * sizeof(float)));
  }
}

void expect_same_verdicts(const std::vector<Verdict>& a,
                          const std::vector<Verdict>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].adversarial, b[i].adversarial) << "sample " << i;
    EXPECT_EQ(a[i].predicted, b[i].predicted) << "sample " << i;
    EXPECT_EQ(a[i].reconstruction_error, b[i].reconstruction_error)
        << "sample " << i;
  }
}

// One tiny trained system for the whole suite (training dominates).
struct FrozenSystemFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    dataset::DatasetConfig data_config;
    data_config.scale = 0.008;
    math::Rng rng(71);
    data = new dataset::Dataset(dataset::generate_dataset(data_config, rng));
    SoteriaConfig config = tiny_config();
    config.seed = 71;
    system = new SoteriaSystem(SoteriaSystem::train(data->train, config));
    system->freeze();
  }
  static void TearDownTestSuite() {
    delete system;
    delete data;
    system = nullptr;
    data = nullptr;
  }

  [[nodiscard]] static std::vector<cfg::Cfg> test_cfgs(std::size_t n) {
    std::vector<cfg::Cfg> cfgs;
    for (std::size_t i = 0; i < std::min(n, data->test.size()); ++i) {
      cfgs.push_back(data->test[i].cfg);
    }
    return cfgs;
  }

  [[nodiscard]] static AnalyzeOptions frozen_options(std::size_t threads) {
    AnalyzeOptions options;
    options.num_threads = threads;
    options.use_frozen = true;
    return options;
  }

  [[nodiscard]] static AnalyzeOptions interpreted_options(
      std::size_t threads) {
    AnalyzeOptions options;
    options.num_threads = threads;
    options.use_frozen = false;
    return options;
  }

  static dataset::Dataset* data;
  static SoteriaSystem* system;
};

dataset::Dataset* FrozenSystemFixture::data = nullptr;
SoteriaSystem* FrozenSystemFixture::system = nullptr;

TEST_F(FrozenSystemFixture, BatchVerdictsMatchInterpretedAtAnyThreadCount) {
  const auto cfgs = test_cfgs(10);
  ASSERT_FALSE(cfgs.empty());
  const math::Rng rng(73);
  const auto interpreted =
      system->analyze_batch(cfgs, rng, interpreted_options(1));
  for (const std::size_t threads : {1U, 2U, 4U}) {
    const auto frozen =
        system->analyze_batch(cfgs, rng, frozen_options(threads));
    expect_same_verdicts(frozen, interpreted);
  }
}

TEST_F(FrozenSystemFixture, SingleSampleAnalyzeMatchesInterpreted) {
  const auto cfgs = test_cfgs(4);
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    math::Rng interpreted_rng(75 + i);
    math::Rng frozen_rng(75 + i);
    // Same system object: route via per-call options only.
    const auto interpreted =
        system->analyze(cfgs[i], interpreted_rng, interpreted_options(1));
    const auto frozen =
        system->analyze(cfgs[i], frozen_rng, frozen_options(1));
    EXPECT_EQ(frozen.adversarial, interpreted.adversarial);
    EXPECT_EQ(frozen.predicted, interpreted.predicted);
    EXPECT_EQ(frozen.reconstruction_error, interpreted.reconstruction_error);
  }
}

TEST_F(FrozenSystemFixture, AdvancingRngAnalyzeMatchesAndAdvancesEqually) {
  const auto cfgs = test_cfgs(3);
  // config().use_frozen is false on this system, so analyze(cfg, rng&)
  // takes the interpreted path; the snapshot must consume the stream
  // identically and agree bitwise.
  const std::shared_ptr<const FrozenModel> snapshot = system->frozen();
  ASSERT_NE(snapshot, nullptr);
  for (const auto& cfg : cfgs) {
    math::Rng interpreted_rng(77);
    math::Rng frozen_rng(77);
    const auto interpreted = system->analyze(cfg, interpreted_rng);
    const auto frozen = snapshot->analyze(
        cfg, frozen_rng, system->pipeline().labeling_cache().get());
    EXPECT_EQ(frozen.reconstruction_error, interpreted.reconstruction_error);
    EXPECT_EQ(frozen.predicted, interpreted.predicted);
    // Both paths drew exactly the same walk stream.
    EXPECT_EQ(interpreted_rng.engine()(), frozen_rng.engine()());
  }
}

TEST_F(FrozenSystemFixture, ExtractMatchesPipelineBitwise) {
  const auto cfgs = test_cfgs(3);
  for (const auto& cfg : cfgs) {
    math::Rng pipeline_rng(79);
    math::Rng frozen_rng(79);
    const auto interpreted = system->pipeline().extract(cfg, pipeline_rng);
    const auto fused = system->frozen()->extract(
        cfg, frozen_rng, system->pipeline().labeling_cache().get());
    ASSERT_EQ(fused.dbl.size(), interpreted.dbl.size());
    ASSERT_EQ(fused.lbl.size(), interpreted.lbl.size());
    for (std::size_t w = 0; w < fused.dbl.size(); ++w) {
      EXPECT_EQ(fused.dbl[w], interpreted.dbl[w]) << "dbl walk " << w;
      EXPECT_EQ(fused.lbl[w], interpreted.lbl[w]) << "lbl walk " << w;
    }
    EXPECT_EQ(fused.pooled_dbl, interpreted.pooled_dbl);
    EXPECT_EQ(fused.pooled_lbl, interpreted.pooled_lbl);
  }
}

TEST_F(FrozenSystemFixture, AnalyzeFeaturesMatchesInterpreted) {
  const auto cfgs = test_cfgs(3);
  for (const auto& cfg : cfgs) {
    math::Rng rng(81);
    const auto features = system->pipeline().extract(cfg, rng);
    const auto interpreted = system->analyze_features(features);
    const auto frozen = system->frozen()->analyze_features(features);
    EXPECT_EQ(frozen.adversarial, interpreted.adversarial);
    EXPECT_EQ(frozen.predicted, interpreted.predicted);
    EXPECT_EQ(frozen.reconstruction_error, interpreted.reconstruction_error);
  }
}

TEST_F(FrozenSystemFixture, StoreOnAndOffAreIdenticalThroughFrozenPath) {
  const auto cfgs = test_cfgs(6);
  const math::Rng rng(83);
  const auto baseline = system->analyze_batch(cfgs, rng, frozen_options(1));

  auto store = std::make_shared<store::FeatureStore>(
      store::StoreConfig{testing::TempDir() + "frozen_identity_store", 64});
  AnalyzeOptions with_store = frozen_options(2);
  with_store.feature_store = store;
  // Cold pass populates the store; warm pass serves every sample from
  // it. Both must match the storeless frozen verdicts bitwise — and
  // the warm pass must actually hit.
  const auto cold = system->analyze_batch(cfgs, rng, with_store);
  expect_same_verdicts(cold, baseline);
  const auto stats_after_cold = store->stats();
  const auto warm = system->analyze_batch(cfgs, rng, with_store);
  expect_same_verdicts(warm, baseline);
  const auto stats_after_warm = store->stats();
  EXPECT_EQ(stats_after_warm.hits, stats_after_cold.hits + cfgs.size());

  // The frozen path writes entries the interpreted path can read.
  AnalyzeOptions interpreted_with_store = interpreted_options(1);
  interpreted_with_store.feature_store = store;
  const auto interpreted =
      system->analyze_batch(cfgs, rng, interpreted_with_store);
  expect_same_verdicts(interpreted, baseline);
}

TEST_F(FrozenSystemFixture, TrainCompilesSnapshotUnderConfigFlag) {
  SoteriaConfig config = tiny_config();
  config.seed = 71;
  config.use_frozen = true;
  const SoteriaSystem trained = SoteriaSystem::train(data->train, config);
  ASSERT_NE(trained.frozen(), nullptr);
  // Default-routed (config-level) frozen analysis agrees with this
  // suite's explicitly-frozen system.
  const auto cfgs = test_cfgs(4);
  const math::Rng rng(85);
  const auto defaulted = trained.analyze_batch(cfgs, rng, AnalyzeOptions{});
  const auto explicit_frozen =
      system->analyze_batch(cfgs, rng, frozen_options(1));
  expect_same_verdicts(defaulted, explicit_frozen);
}

TEST_F(FrozenSystemFixture, FreezeIsRequiredForRouting) {
  SoteriaConfig config = tiny_config();
  config.seed = 71;
  const SoteriaSystem unfrozen = SoteriaSystem::train(data->train, config);
  ASSERT_EQ(unfrozen.frozen(), nullptr);
  // use_frozen without a snapshot is a no-op, not an error.
  const auto cfgs = test_cfgs(2);
  const math::Rng rng(87);
  const auto a = unfrozen.analyze_batch(cfgs, rng, frozen_options(1));
  const auto b = unfrozen.analyze_batch(cfgs, rng, interpreted_options(1));
  expect_same_verdicts(a, b);
}

}  // namespace
}  // namespace soteria::core
