// Bitwise-identity contracts of the blocked kernels: the cache-blocked
// GEMM (matmul / matmul_at) and the direct conv1d kernel must produce
// exactly the bytes of the preserved naive references for finite
// inputs, because every per-output accumulation runs the same
// statement over k in the same ascending order. Shapes deliberately
// straddle the block (256) and row-unroll (4) boundaries.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "math/matrix.h"
#include "math/rng.h"
#include "nn/conv1d.h"

namespace soteria::math {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng,
                     bool sprinkle_zeros = false) {
  Matrix m(rows, cols);
  m.fill_uniform(rng, -2.0F, 2.0F);
  if (sprinkle_zeros) {
    // Exact zeros exercise the all-zero row-tile skip.
    auto data = m.data();
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (rng.index(3) == 0) data[i] = 0.0F;
    }
  }
  return m;
}

void expect_bitwise_equal(const Matrix& a, const Matrix& b,
                          const char* label) {
  ASSERT_EQ(a.rows(), b.rows()) << label;
  ASSERT_EQ(a.cols(), b.cols()) << label;
  const auto da = a.data();
  const auto db = b.data();
  ASSERT_EQ(0, std::memcmp(da.data(), db.data(), da.size() * sizeof(float)))
      << label;
}

TEST(BlockedGemmTest, MatmulMatchesReferenceBitwise) {
  Rng rng(51);
  // (m, k, n) shapes: degenerate, odd, unroll tails, and k > one block.
  const std::size_t shapes[][3] = {{1, 1, 1},   {3, 5, 7},   {4, 4, 4},
                                   {17, 1, 9},  {5, 64, 3},  {33, 300, 5},
                                   {2, 257, 31}, {7, 512, 12}};
  for (const auto& s : shapes) {
    const Matrix a = random_matrix(s[0], s[1], rng, true);
    const Matrix b = random_matrix(s[1], s[2], rng, true);
    expect_bitwise_equal(matmul(a, b), matmul_reference(a, b), "matmul");
  }
}

TEST(BlockedGemmTest, MatmulAtMatchesReferenceBitwise) {
  Rng rng(52);
  const std::size_t shapes[][3] = {{1, 1, 1},  {5, 3, 7},   {4, 17, 4},
                                   {64, 5, 3}, {300, 9, 33}, {257, 2, 31}};
  for (const auto& s : shapes) {
    // a is k x m (transposed-A product), b is k x n.
    const Matrix a = random_matrix(s[0], s[1], rng, true);
    const Matrix b = random_matrix(s[0], s[2], rng, true);
    expect_bitwise_equal(matmul_at(a, b), matmul_at_reference(a, b),
                         "matmul_at");
  }
}

TEST(BlockedGemmTest, ZeroMatricesStayPositiveZero) {
  // The all-zero tile skip must be invisible: accumulators start at
  // +0.0f either way and finite-input sums never produce -0.0f.
  const Matrix a(3, 8, 0.0F);
  const Matrix b(8, 5, 0.0F);
  const Matrix blocked = matmul(a, b);
  const Matrix reference = matmul_reference(a, b);
  expect_bitwise_equal(blocked, reference, "zero product");
  for (const float x : blocked.data()) {
    EXPECT_FALSE(std::signbit(x));
  }
}

TEST(DirectConv1dTest, MatchesReferenceBitwise) {
  Rng rng(53);
  struct Shape {
    std::size_t rows, in_channels, in_length, out_channels, kernel;
  };
  // Odd and even output-channel counts (pairing tail), kernels 1..5,
  // single- and multi-channel inputs.
  const Shape shapes[] = {{1, 1, 8, 1, 3},  {2, 1, 30, 4, 3},
                          {3, 2, 20, 5, 3}, {4, 3, 16, 7, 1},
                          {2, 4, 25, 6, 5}, {5, 2, 12, 2, 4}};
  for (const auto& s : shapes) {
    const std::size_t out_len = s.in_length - s.kernel + 1;
    Matrix in = random_matrix(s.rows, s.in_channels * s.in_length, rng);
    Matrix weights =
        random_matrix(s.out_channels, s.in_channels * s.kernel, rng, true);
    Matrix bias = random_matrix(1, s.out_channels, rng);
    std::vector<float> fast(s.rows * s.out_channels * out_len, -1.0F);
    std::vector<float> oracle(fast.size(), -2.0F);
    nn::conv1d_infer_into(in.data().data(), fast.data(),
                          weights.data().data(), bias.data().data(), s.rows,
                          s.in_channels, s.in_length, s.out_channels,
                          s.kernel);
    nn::conv1d_infer_reference_into(in.data().data(), oracle.data(),
                                    weights.data().data(),
                                    bias.data().data(), s.rows,
                                    s.in_channels, s.in_length,
                                    s.out_channels, s.kernel);
    ASSERT_EQ(0, std::memcmp(fast.data(), oracle.data(),
                             fast.size() * sizeof(float)))
        << s.out_channels << " channels, kernel " << s.kernel;
  }
}

}  // namespace
}  // namespace soteria::math
