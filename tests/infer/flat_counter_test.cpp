// Bit-level contracts of the gram-counting fast paths: the rolling
// packed-key update (count_grams, FlatGramCounter) must agree exactly
// with the preserved per-window reference implementation, and
// count_into_vocab must match the map path filtered through the
// vocabulary, window totals included. Counting is pure integer
// arithmetic, so every comparison here is exact equality.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "features/ngram.h"
#include "math/rng.h"

namespace soteria::features {
namespace {

/// Random walk of `length` labels drawn from [0, max_label].
std::vector<cfg::Label> random_walk(std::size_t length, cfg::Label max_label,
                                    math::Rng& rng) {
  std::vector<cfg::Label> walk(length);
  for (auto& label : walk) {
    label = static_cast<cfg::Label>(
        rng.index(static_cast<std::size_t>(max_label) + 1));
  }
  return walk;
}

GramCounts reference_counts(const std::vector<cfg::Label>& walk,
                            const std::vector<std::size_t>& sizes) {
  GramCounts counts;
  count_grams_reference(walk, sizes, counts);
  return counts;
}

TEST(RollingCountTest, MatchesReferenceAcrossRandomWalks) {
  math::Rng rng(101);
  const std::vector<std::vector<std::size_t>> size_sets = {
      {1}, {2}, {4}, {2, 3, 4}, {1, 2, 3, 4}, {3, 1}};
  for (std::size_t trial = 0; trial < 50; ++trial) {
    const std::size_t length = rng.index(40);  // includes 0..3: no windows
    const auto walk = random_walk(length, 17, rng);
    for (const auto& sizes : size_sets) {
      GramCounts rolling;
      count_grams(walk, sizes, rolling);
      EXPECT_EQ(rolling, reference_counts(walk, sizes))
          << "trial " << trial << " length " << length;
    }
  }
}

TEST(RollingCountTest, MaxLabelsAndRepeats) {
  const std::vector<std::size_t> sizes = {1, 2, 3, 4};
  // All-max labels exercise the full 14-bit fields and the length-4
  // body mask edge (body occupies all 56 label bits).
  const std::vector<cfg::Label> maxed(10, kMaxGramLabel);
  GramCounts rolling;
  count_grams(maxed, sizes, rolling);
  EXPECT_EQ(rolling, reference_counts(maxed, sizes));

  const std::vector<cfg::Label> repeated(25, 7);
  GramCounts rep;
  count_grams(repeated, sizes, rep);
  EXPECT_EQ(rep, reference_counts(repeated, sizes));
}

TEST(RollingCountTest, DuplicateSizesMatchReferenceWithoutOverflow) {
  math::Rng rng(505);
  // More entries than there are distinct valid sizes: each repeat is
  // individually valid and the reference counts it as its own pass
  // over the walk, so the rolling path must reproduce the
  // double-counting while keeping its per-size state bounded by
  // kMaxGramLength distinct sizes (regression: this used to overflow
  // a fixed array sized for kMaxGramLength entries of `sizes`).
  const std::vector<std::size_t> sizes = {2, 2, 3, 2, 4, 1, 3, 2, 1};
  ASSERT_GT(sizes.size(), kMaxGramLength);
  for (std::size_t trial = 0; trial < 20; ++trial) {
    const auto walk = random_walk(rng.index(40), 15, rng);
    const GramCounts expected = reference_counts(walk, sizes);

    GramCounts rolling;
    count_grams(walk, sizes, rolling);
    EXPECT_EQ(rolling, expected) << "trial " << trial;

    FlatGramCounter counter;
    counter.count_walk(walk, sizes);
    EXPECT_EQ(counter.to_counts(), expected) << "trial " << trial;
    EXPECT_EQ(counter.total(), total_occurrences(expected));
  }
}

TEST(CountIntoVocabTest, DuplicateSizesDoubleCountLikeReference) {
  math::Rng rng(606);
  const std::vector<std::size_t> sizes = {3, 2, 3, 3, 2, 4, 2};
  ASSERT_GT(sizes.size(), kMaxGramLength);
  GramCounts vocab_pool;
  const std::vector<std::size_t> canonical = {2, 3, 4};
  for (std::size_t w = 0; w < 4; ++w) {
    count_grams_reference(random_walk(30, 10, rng), canonical, vocab_pool);
  }
  std::vector<GramKey> vocab;
  for (const auto& [key, count] : vocab_pool) vocab.push_back(key);
  const auto hash = PerfectGramHash::build(vocab);
  const auto table = DirectGramTable::build(vocab);

  for (std::size_t trial = 0; trial < 10; ++trial) {
    const auto walk = random_walk(10 + rng.index(40), 12, rng);
    const GramCounts full = reference_counts(walk, sizes);

    std::vector<std::uint32_t> dense_hash(vocab.size(), 0);
    std::vector<std::uint32_t> dense_table(vocab.size(), 0);
    const std::uint64_t windows_hash =
        count_into_vocab(walk, sizes, hash, dense_hash);
    const std::uint64_t windows_table =
        count_into_vocab(walk, sizes, table, dense_table);

    EXPECT_EQ(windows_hash, total_occurrences(full)) << "trial " << trial;
    EXPECT_EQ(windows_table, windows_hash);
    EXPECT_EQ(dense_table, dense_hash);
    for (std::size_t i = 0; i < vocab.size(); ++i) {
      const auto it = full.find(vocab[i]);
      const std::uint32_t expected = it == full.end() ? 0 : it->second;
      EXPECT_EQ(dense_hash[i], expected)
          << "trial " << trial << " gram " << gram_to_string(vocab[i]);
    }
  }
}

TEST(RollingCountTest, ShortWalkWithBadLabelStillProducesNothing) {
  // The reference ignores labels when no size fits the walk; the
  // rolling path must preserve that (validation only when windows
  // exist).
  const std::vector<cfg::Label> walk = {kMaxGramLabel + 1};
  const std::vector<std::size_t> sizes = {2, 3, 4};
  GramCounts counts;
  count_grams(walk, sizes, counts);
  EXPECT_TRUE(counts.empty());
  const std::vector<std::size_t> unigrams = {1};
  EXPECT_THROW(count_grams(walk, unigrams, counts), std::invalid_argument);
}

TEST(FlatGramCounterTest, AccumulatesLikeReferenceAcrossWalks) {
  math::Rng rng(202);
  const std::vector<std::size_t> sizes = {2, 3, 4};
  FlatGramCounter counter(4);  // tiny initial table: forces growth
  GramCounts expected;
  for (std::size_t w = 0; w < 20; ++w) {
    const auto walk = random_walk(5 + rng.index(60), 30, rng);
    counter.count_walk(walk, sizes);
    count_grams_reference(walk, sizes, expected);
  }
  EXPECT_EQ(counter.to_counts(), expected);
  EXPECT_EQ(counter.distinct(), expected.size());
  EXPECT_EQ(counter.total(), total_occurrences(expected));

  // clear() keeps capacity but drops all state.
  counter.clear();
  EXPECT_EQ(counter.distinct(), 0U);
  EXPECT_EQ(counter.total(), 0U);
  const auto walk = random_walk(12, 5, rng);
  counter.count_walk(walk, sizes);
  EXPECT_EQ(counter.to_counts(), reference_counts(walk, sizes));
}

TEST(PerfectGramHashTest, BijectiveOverBuildSetAndMissesOutside) {
  math::Rng rng(303);
  const std::vector<std::size_t> sizes = {2, 3, 4};
  // Distinct keys from real walks, so lengths and label mixes vary.
  GramCounts pool;
  for (std::size_t w = 0; w < 12; ++w) {
    const auto walk = random_walk(40, 200, rng);
    count_grams_reference(walk, sizes, pool);
  }
  std::vector<GramKey> keys;
  for (const auto& [key, count] : pool) keys.push_back(key);
  ASSERT_GE(keys.size(), 50U);

  const auto hash = PerfectGramHash::build(keys);
  EXPECT_EQ(hash.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(hash.lookup(keys[i]), i) << gram_to_string(keys[i]);
  }
  // Probing with keys outside the build set must miss, never alias.
  std::size_t miss_probes = 0;
  for (std::size_t trial = 0; trial < 500; ++trial) {
    const auto walk = random_walk(4, kMaxGramLabel, rng);
    const GramKey key = pack_gram(walk);
    if (pool.contains(key)) continue;
    ++miss_probes;
    EXPECT_EQ(hash.lookup(key), PerfectGramHash::npos);
  }
  EXPECT_GT(miss_probes, 0U);
}

TEST(PerfectGramHashTest, DuplicateKeysThrow) {
  const std::vector<cfg::Label> pair = {1, 2};
  const std::vector<cfg::Label> single = {3};
  const std::vector<GramKey> keys = {pack_gram(pair), pack_gram(single),
                                     pack_gram(pair)};
  EXPECT_THROW((void)PerfectGramHash::build(keys), std::invalid_argument);
}

TEST(CountIntoVocabTest, MatchesFilteredMapAndWindowTotal) {
  math::Rng rng(404);
  const std::vector<std::size_t> sizes = {2, 3, 4};
  // Vocabulary = the grams of a few "training" walks.
  GramCounts vocab_pool;
  for (std::size_t w = 0; w < 6; ++w) {
    count_grams_reference(random_walk(30, 12, rng), sizes, vocab_pool);
  }
  std::vector<GramKey> vocab;
  for (const auto& [key, count] : vocab_pool) vocab.push_back(key);
  const auto hash = PerfectGramHash::build(vocab);

  for (std::size_t trial = 0; trial < 25; ++trial) {
    // Wider label range than the vocabulary pool: some grams miss.
    const auto walk = random_walk(rng.index(50), 20, rng);
    std::vector<std::uint32_t> dense(vocab.size(), 0);
    const std::uint64_t windows =
        count_into_vocab(walk, sizes, hash, dense);

    const GramCounts full = reference_counts(walk, sizes);
    EXPECT_EQ(windows, total_occurrences(full)) << "trial " << trial;
    for (std::size_t i = 0; i < vocab.size(); ++i) {
      const auto it = full.find(vocab[i]);
      const std::uint32_t expected = it == full.end() ? 0 : it->second;
      EXPECT_EQ(dense[i], expected)
          << "trial " << trial << " gram " << gram_to_string(vocab[i]);
    }
  }
}

}  // namespace
}  // namespace soteria::features
