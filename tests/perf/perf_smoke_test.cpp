// Fast smoke coverage for the performance-critical fast paths: the
// fused parallel centrality and the cached extraction pipeline run on
// a fixed workload with shape/consistency assertions only — no timing
// assertions, so the suite is stable in CI and meaningful under TSan
// (it carries the `perf` ctest label, which the sanitizer invocation
// includes).
#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cfg/labeling_cache.h"
#include "features/pipeline.h"
#include "graph/centrality.h"
#include "graph/generators.h"
#include "math/rng.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace soteria {
namespace {

TEST(PerfSmoke, ParallelCentralityOnRepresentativeGraph) {
  math::Rng rng(2024);
  const auto g = graph::random_connected_dag_plus(400, 0.02, rng);
  const auto serial = graph::centrality_scores(g, 1);
  ASSERT_EQ(serial.betweenness.size(), g.node_count());
  ASSERT_EQ(serial.closeness.size(), g.node_count());

  for (std::size_t threads : {2U, 4U, 8U}) {
    const auto scores = graph::centrality_scores(g, threads);
    EXPECT_EQ(scores.betweenness, serial.betweenness)
        << threads << " threads";
    EXPECT_EQ(scores.closeness, serial.closeness) << threads << " threads";
  }
}

TEST(PerfSmoke, CachedExtractionWorkload) {
  // A miniature of the training flow: fit on a small corpus with a
  // shared cache, then extract every sample twice — the second sweep
  // must be all cache hits and produce identically-shaped bundles.
  math::Rng corpus_rng(7);
  std::vector<cfg::Cfg> corpus;
  for (int i = 0; i < 12; ++i) {
    corpus.emplace_back(
        graph::random_connected_dag_plus(30, 0.08, corpus_rng), 0);
  }

  features::PipelineConfig config;
  config.top_k = 50;
  auto cache = std::make_shared<cfg::LabelingCache>(64);
  math::Rng fit_rng(11);
  const auto pipeline =
      features::FeaturePipeline::fit(corpus, config, fit_rng, 4, cache);
  EXPECT_EQ(cache->stats().misses, corpus.size());

  const auto dim = pipeline.combined_dimension();
  ASSERT_GT(dim, 0U);
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      math::Rng rng(100 + i);
      const auto features = pipeline.extract(corpus[i], rng);
      ASSERT_EQ(features.dbl.size(), config.walk.walks_per_labeling);
      ASSERT_EQ(features.lbl.size(), config.walk.walks_per_labeling);
      EXPECT_EQ(features.pooled_combined().size(), dim);
    }
  }
  // fit missed once per sample; everything since has been a hit.
  EXPECT_EQ(cache->stats().misses, corpus.size());
  EXPECT_EQ(cache->stats().hits, 2 * corpus.size());
  EXPECT_EQ(cache->stats().evictions, 0U);
}

TEST(PerfSmoke, HistogramQuantilesAreOrderedAndBounded) {
  // perf_serve reports its p50/p99 latencies through
  // HistogramData::quantile; pin the properties those numbers rely on.
  obs::HistogramData histogram;
  for (int i = 1; i <= 1000; ++i) histogram.record(i * 0.001);  // 1ms..1s
  const double p50 = histogram.quantile(0.50);
  const double p99 = histogram.quantile(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, histogram.max);
  EXPECT_GE(p50, histogram.min);
}

/// The keys perf_serve records per (workers, shards, batch) combination.
const char* const kServeMetrics[] = {
    "throughput_rps", "e2e_p50_ms", "e2e_p99_ms", "queue_wait_p50_ms",
    "queue_wait_p99_ms"};

TEST(PerfSmoke, ServeSweepJsonSchemaParses) {
  // A synthetic document in the exact shape perf_serve writes: the
  // parse side of the schema must keep accepting it.
  std::ostringstream doc;
  doc << "{\n  \"perf_serve\": {\n    \"hardware_threads\": 8";
  for (const char* metric : kServeMetrics) {
    doc << ",\n    \"w4_s2_b16_" << metric << "\": 1.5";
  }
  doc << "\n  }\n}\n";

  const auto parsed = obs::json::parse(doc.str());
  const auto& section = parsed.as_object().at("perf_serve").as_object();
  EXPECT_EQ(section.at("hardware_threads").as_number(), 8.0);
  for (const char* metric : kServeMetrics) {
    const auto& value = section.at("w4_s2_b16_" + std::string(metric));
    ASSERT_EQ(value.type(), obs::json::Value::Type::kNumber) << metric;
    EXPECT_EQ(value.as_number(), 1.5) << metric;
  }
}

TEST(PerfSmoke, RecordedServeSweepHasTheNewSchema) {
  // When a BENCH_perf.json is reachable (running from the build tree
  // or the repo root), its perf_serve section must carry the sweep's
  // current key shape — stale t*_q* keys from the old sweep mean the
  // bench and its consumers have drifted apart.
  std::string contents;
  for (const char* candidate :
       {"BENCH_perf.json", "../BENCH_perf.json", "../../BENCH_perf.json"}) {
    std::ifstream in(candidate);
    if (in) {
      std::stringstream buffer;
      buffer << in.rdbuf();
      contents = buffer.str();
      break;
    }
  }
  if (contents.empty()) {
    GTEST_SKIP() << "no BENCH_perf.json in reach; bench not yet run here";
  }

  const auto parsed = obs::json::parse(contents);
  const auto& document = parsed.as_object();
  const auto it = document.find("perf_serve");
  if (it == document.end()) {
    GTEST_SKIP() << "BENCH_perf.json has no perf_serve section yet";
  }
  const auto& section = it->second.as_object();
  ASSERT_TRUE(section.count("hardware_threads"));
  EXPECT_GE(section.at("hardware_threads").as_number(), 1.0);
  for (const char* metric : kServeMetrics) {
    const std::string key = "w1_s1_b16_" + std::string(metric);
    ASSERT_TRUE(section.count(key)) << key;
    EXPECT_GE(section.at(key).as_number(), 0.0) << key;
  }
  // The rewrite replaced the section wholesale: no stale keys.
  for (const auto& [key, value] : section) {
    EXPECT_NE(key.rfind("t1_q", 0), 0U) << "stale key " << key;
  }
}

TEST(PerfSmoke, RecordedGraphSweepHasExactAndApproxKeys) {
  // When a BENCH_perf.json is reachable, its perf_graph section must
  // carry the exact-vs-approximate sweep shape: distinct "exact.*" and
  // "approx.*" timing keys (the two paths must never alias), the
  // recorded pivot counts, and the n=10,000 speedup ratio the bench
  // gates on. Stale "centrality.*" keys from the pre-approximation
  // sweep mean the bench and its consumers have drifted apart.
  std::string contents;
  for (const char* candidate :
       {"BENCH_perf.json", "../BENCH_perf.json", "../../BENCH_perf.json"}) {
    std::ifstream in(candidate);
    if (in) {
      std::stringstream buffer;
      buffer << in.rdbuf();
      contents = buffer.str();
      break;
    }
  }
  if (contents.empty()) {
    GTEST_SKIP() << "no BENCH_perf.json in reach; bench not yet run here";
  }

  const auto parsed = obs::json::parse(contents);
  const auto& document = parsed.as_object();
  const auto it = document.find("perf_graph");
  if (it == document.end()) {
    GTEST_SKIP() << "BENCH_perf.json has no perf_graph section yet";
  }
  const auto& section = it->second.as_object();
  for (const char* key :
       {"exact.n1000.t1.ms", "exact.n10000.t1.ms", "exact.n10000.t8.ms",
        "exact.n50000.t1.ms", "approx.n10000.t1.ms", "approx.n10000.t8.ms",
        "approx.n50000.t1.ms"}) {
    ASSERT_TRUE(section.count(key)) << key;
    EXPECT_GT(section.at(key).as_number(), 0.0) << key;
  }
  for (const char* key : {"approx.n10000.pivots", "approx.n50000.pivots"}) {
    ASSERT_TRUE(section.count(key)) << key;
    EXPECT_GE(section.at(key).as_number(), 1.0) << key;
  }
  // The bench exits non-zero below 5x; a recorded document must
  // therefore always carry a passing ratio.
  ASSERT_TRUE(section.count("approx.n10000.speedup_over_exact_t1"));
  EXPECT_GE(section.at("approx.n10000.speedup_over_exact_t1").as_number(),
            5.0);
  // The rewrite replaced the section wholesale: no stale keys.
  for (const auto& [key, value] : section) {
    EXPECT_NE(key.rfind("centrality.", 0), 0U) << "stale key " << key;
  }
}

TEST(PerfSmoke, RecordedInferSweepHasSpeedupFloorsAndIdentity) {
  // When a BENCH_perf.json is reachable, its perf_infer section must
  // carry the compiled-inference sweep shape: distinct interpreted_*
  // and frozen_* timings per thread count (the two paths must never
  // alias), the n-gram before/after pair, and the gates the bench
  // enforces — bit identity, n-grams >= 3x, frozen >= 2x at one
  // thread. The bench exits non-zero otherwise, so a recorded document
  // must always carry passing values.
  std::string contents;
  for (const char* candidate :
       {"BENCH_perf.json", "../BENCH_perf.json", "../../BENCH_perf.json"}) {
    std::ifstream in(candidate);
    if (in) {
      std::stringstream buffer;
      buffer << in.rdbuf();
      contents = buffer.str();
      break;
    }
  }
  if (contents.empty()) {
    GTEST_SKIP() << "no BENCH_perf.json in reach; bench not yet run here";
  }

  const auto parsed = obs::json::parse(contents);
  const auto& document = parsed.as_object();
  const auto it = document.find("perf_infer");
  if (it == document.end()) {
    GTEST_SKIP() << "BENCH_perf.json has no perf_infer section yet";
  }
  const auto& section = it->second.as_object();
  for (const char* key :
       {"ngrams_reference_ms", "ngrams_flat_ms", "interpreted_t1_ms",
        "interpreted_t2_ms", "interpreted_t4_ms", "frozen_t1_ms",
        "frozen_t2_ms", "frozen_t4_ms"}) {
    ASSERT_TRUE(section.count(key)) << key;
    EXPECT_GT(section.at(key).as_number(), 0.0) << key;
  }
  ASSERT_TRUE(section.count("bit_identical"));
  EXPECT_EQ(section.at("bit_identical").as_number(), 1.0);
  ASSERT_TRUE(section.count("ngrams_speedup"));
  EXPECT_GE(section.at("ngrams_speedup").as_number(), 3.0);
  ASSERT_TRUE(section.count("frozen_speedup_t1"));
  EXPECT_GE(section.at("frozen_speedup_t1").as_number(), 2.0);
}

}  // namespace
}  // namespace soteria
