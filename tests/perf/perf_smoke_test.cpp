// Fast smoke coverage for the performance-critical fast paths: the
// fused parallel centrality and the cached extraction pipeline run on
// a fixed workload with shape/consistency assertions only — no timing
// assertions, so the suite is stable in CI and meaningful under TSan
// (it carries the `perf` ctest label, which the sanitizer invocation
// includes).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "cfg/labeling_cache.h"
#include "features/pipeline.h"
#include "graph/centrality.h"
#include "graph/generators.h"
#include "math/rng.h"

namespace soteria {
namespace {

TEST(PerfSmoke, ParallelCentralityOnRepresentativeGraph) {
  math::Rng rng(2024);
  const auto g = graph::random_connected_dag_plus(400, 0.02, rng);
  const auto serial = graph::centrality_scores(g, 1);
  ASSERT_EQ(serial.betweenness.size(), g.node_count());
  ASSERT_EQ(serial.closeness.size(), g.node_count());

  for (std::size_t threads : {2U, 4U, 8U}) {
    const auto scores = graph::centrality_scores(g, threads);
    EXPECT_EQ(scores.betweenness, serial.betweenness)
        << threads << " threads";
    EXPECT_EQ(scores.closeness, serial.closeness) << threads << " threads";
  }
}

TEST(PerfSmoke, CachedExtractionWorkload) {
  // A miniature of the training flow: fit on a small corpus with a
  // shared cache, then extract every sample twice — the second sweep
  // must be all cache hits and produce identically-shaped bundles.
  math::Rng corpus_rng(7);
  std::vector<cfg::Cfg> corpus;
  for (int i = 0; i < 12; ++i) {
    corpus.emplace_back(
        graph::random_connected_dag_plus(30, 0.08, corpus_rng), 0);
  }

  features::PipelineConfig config;
  config.top_k = 50;
  auto cache = std::make_shared<cfg::LabelingCache>(64);
  math::Rng fit_rng(11);
  const auto pipeline =
      features::FeaturePipeline::fit(corpus, config, fit_rng, 4, cache);
  EXPECT_EQ(cache->stats().misses, corpus.size());

  const auto dim = pipeline.combined_dimension();
  ASSERT_GT(dim, 0U);
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      math::Rng rng(100 + i);
      const auto features = pipeline.extract(corpus[i], rng);
      ASSERT_EQ(features.dbl.size(), config.walk.walks_per_labeling);
      ASSERT_EQ(features.lbl.size(), config.walk.walks_per_labeling);
      EXPECT_EQ(features.pooled_combined().size(), dim);
    }
  }
  // fit missed once per sample; everything since has been a hit.
  EXPECT_EQ(cache->stats().misses, corpus.size());
  EXPECT_EQ(cache->stats().hits, 2 * corpus.size());
  EXPECT_EQ(cache->stats().evictions, 0U);
}

}  // namespace
}  // namespace soteria
