#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

#include "runtime/thread_pool.h"

namespace soteria::obs {
namespace {

TEST(Span, RecordsNestedPathsAsTimingHistograms) {
  MetricsRegistry reg(true);
  {
    const Span outer("train", reg);
    EXPECT_EQ(current_span_context().path, "train");
    {
      const Span inner("fit", reg);
      EXPECT_EQ(current_span_context().path, "train/fit");
    }
    { const Span inner("extract", reg); }
  }
  EXPECT_EQ(current_span_context().path, "");

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.histograms.at("t/train").count, 1U);
  EXPECT_EQ(snap.histograms.at("t/train/fit").count, 1U);
  EXPECT_EQ(snap.histograms.at("t/train/extract").count, 1U);
  EXPECT_GE(snap.histograms.at("t/train").sum,
            snap.histograms.at("t/train/fit").sum);
}

TEST(Span, RepeatedSpansAggregateIntoOneHistogram) {
  MetricsRegistry reg(true);
  for (int i = 0; i < 5; ++i) {
    const Span span("step", reg);
  }
  EXPECT_EQ(reg.snapshot().histograms.at("t/step").count, 5U);
}

TEST(Span, DisabledRegistryMeansNoPathAndNoRecord) {
  MetricsRegistry reg;  // disabled
  {
    const Span span("ghost", reg);
    EXPECT_EQ(current_span_context().path, "");
  }
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(Span, TimePrefixDistinguishesSpansFromValueHistograms) {
  MetricsRegistry reg(true);
  { const Span span("stage", reg); }
  reg.record("stage", 1.0);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.histograms.count("t/stage"), 1U);
  EXPECT_EQ(snap.histograms.count("stage"), 1U);
}

TEST(SpanContextGuard, InstallsAndRestores) {
  MetricsRegistry reg(true);
  EXPECT_EQ(current_span_context().path, "");
  {
    const SpanContextGuard guard(SpanContext{"outer/stage"});
    EXPECT_EQ(current_span_context().path, "outer/stage");
    { const Span span("leaf", reg); }
  }
  EXPECT_EQ(current_span_context().path, "");
  EXPECT_EQ(reg.snapshot().histograms.at("t/outer/stage/leaf").count, 1U);
}

// A stage executed inside a parallel region must record under the
// caller's span path no matter which thread runs it — this is what
// makes per-path aggregates identical at every thread count.
TEST(SpanContext, PropagatesThroughThreadPool) {
  auto& reg = registry();
  const bool was_enabled = reg.enabled();
  reg.reset();
  reg.set_enabled(true);

  constexpr std::size_t kItems = 32;
  {
    runtime::ThreadPool pool(4);
    const Span stage("batch");
    pool.parallel_for(kItems, [&](std::size_t) {
      const Span work("work");
    });
  }

  const auto snap = reg.snapshot();
  reg.reset();
  reg.set_enabled(was_enabled);

  ASSERT_EQ(snap.histograms.count("t/batch/work"), 1U);
  EXPECT_EQ(snap.histograms.at("t/batch/work").count, kItems);
  // No stray path: every "work" span nested under "batch".
  for (const auto& [name, data] : snap.histograms) {
    if (name.find("work") != std::string::npos) {
      EXPECT_EQ(name, "t/batch/work") << "stray span path: " << name;
    }
  }
}

TEST(SpanContext, SerialFallbackKeepsCallerPath) {
  auto& reg = registry();
  const bool was_enabled = reg.enabled();
  reg.reset();
  reg.set_enabled(true);

  {
    const Span stage("serial");
    runtime::parallel_for(1, 8, [&](std::size_t) {
      const Span work("work");
    });
  }

  const auto snap = reg.snapshot();
  reg.reset();
  reg.set_enabled(was_enabled);

  ASSERT_EQ(snap.histograms.count("t/serial/work"), 1U);
  EXPECT_EQ(snap.histograms.at("t/serial/work").count, 8U);
}

}  // namespace
}  // namespace soteria::obs
