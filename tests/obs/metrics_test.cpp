#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

namespace soteria::obs {
namespace {

TEST(HistogramBuckets, BoundsDoubleFromOneMicrosecond) {
  EXPECT_DOUBLE_EQ(bucket_upper_bound(0), 1e-6);
  for (std::size_t i = 1; i < kHistogramBuckets; ++i) {
    EXPECT_DOUBLE_EQ(bucket_upper_bound(i), 2.0 * bucket_upper_bound(i - 1));
  }
  EXPECT_GT(bucket_upper_bound(kHistogramBuckets - 1), 60.0);
}

TEST(HistogramData, RecordTracksMoments) {
  HistogramData h;
  EXPECT_EQ(h.count, 0U);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);

  h.record(2e-6);
  h.record(4e-6);
  h.record(6e-6);
  EXPECT_EQ(h.count, 3U);
  EXPECT_DOUBLE_EQ(h.sum, 12e-6);
  EXPECT_DOUBLE_EQ(h.min, 2e-6);
  EXPECT_DOUBLE_EQ(h.max, 6e-6);
  EXPECT_DOUBLE_EQ(h.mean(), 4e-6);

  std::uint64_t bucketed = 0;
  for (const auto c : h.buckets) bucketed += c;
  EXPECT_EQ(bucketed, h.count);
}

TEST(HistogramData, OverflowValuesLandInLastBucket) {
  HistogramData h;
  h.record(1e9);  // far beyond the largest finite bound
  EXPECT_EQ(h.buckets[kHistogramBuckets], 1U);
  EXPECT_EQ(h.count, 1U);
}

TEST(HistogramData, QuantileIsClampedByMax) {
  HistogramData h;
  for (int i = 0; i < 100; ++i) h.record(3e-6);
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 3e-6);
  EXPECT_LE(p50, h.max + 1e-12);
  EXPECT_LE(h.quantile(1.0), h.max + 1e-12);
}

TEST(HistogramData, MergeAddsCountsAndWidensRange) {
  HistogramData a;
  HistogramData b;
  a.record(1e-6);
  a.record(2e-6);
  b.record(8e-6);
  a.merge(b);
  EXPECT_EQ(a.count, 3U);
  EXPECT_DOUBLE_EQ(a.min, 1e-6);
  EXPECT_DOUBLE_EQ(a.max, 8e-6);
  std::uint64_t bucketed = 0;
  for (const auto c : a.buckets) bucketed += c;
  EXPECT_EQ(bucketed, 3U);
}

TEST(MetricsRegistry, DisabledByDefaultAndRecordsNothing) {
  MetricsRegistry reg;
  EXPECT_FALSE(reg.enabled());
  reg.counter_add("c");
  reg.gauge_set("g", 1.0);
  reg.record("h", 0.5);
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(MetricsRegistry, CountersAccumulate) {
  MetricsRegistry reg(true);
  reg.counter_add("a");
  reg.counter_add("a", 4);
  reg.counter_add("b", 2);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("a"), 5U);
  EXPECT_EQ(snap.counters.at("b"), 2U);
  EXPECT_EQ(snap.counters.size(), 2U);
}

TEST(MetricsRegistry, GaugeLastWriteWins) {
  MetricsRegistry reg(true);
  reg.gauge_set("loss", 0.8);
  reg.gauge_set("loss", 0.3);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauges.at("loss"), 0.3);
}

TEST(MetricsRegistry, HistogramsAggregate) {
  MetricsRegistry reg(true);
  reg.record("h", 1.0);
  reg.record("h", 3.0);
  const auto snap = reg.snapshot();
  const auto& h = snap.histograms.at("h");
  EXPECT_EQ(h.count, 2U);
  EXPECT_DOUBLE_EQ(h.sum, 4.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 3.0);
}

TEST(MetricsRegistry, DisablingKeepsDataAndStopsWrites) {
  MetricsRegistry reg(true);
  reg.counter_add("kept", 7);
  reg.set_enabled(false);
  reg.counter_add("kept", 100);
  reg.counter_add("new");
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("kept"), 7U);
  EXPECT_EQ(snap.counters.count("new"), 0U);
}

TEST(MetricsRegistry, ResetClearsEverythingButKeepsEnabled) {
  MetricsRegistry reg(true);
  reg.counter_add("c");
  reg.gauge_set("g", 2.0);
  reg.record("h", 1.0);
  reg.reset();
  EXPECT_TRUE(reg.snapshot().empty());
  EXPECT_TRUE(reg.enabled());
  reg.counter_add("c", 3);
  EXPECT_EQ(reg.snapshot().counters.at("c"), 3U);
}

// Each writer thread gets its own shard; the merged totals must be
// exact regardless of scheduling. This is the TSan target for the
// sharded write path.
TEST(MetricsRegistry, ConcurrentWritersMergeExactly) {
  MetricsRegistry reg(true);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 2000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        reg.counter_add("events");
        reg.record("values", static_cast<double>(t + 1));
        reg.gauge_set("last", static_cast<double>(t));
      }
    });
  }
  for (auto& w : writers) w.join();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("events"), kThreads * kPerThread);
  EXPECT_EQ(snap.histograms.at("values").count, kThreads * kPerThread);
  EXPECT_GE(snap.gauges.at("last"), 0.0);
  EXPECT_LT(snap.gauges.at("last"), static_cast<double>(kThreads));
}

// Snapshotting while writers are active must be safe and observe a
// consistent (if partial) view.
TEST(MetricsRegistry, SnapshotIsSafeDuringWrites) {
  MetricsRegistry reg(true);
  std::thread writer([&reg] {
    for (std::size_t i = 0; i < 5000; ++i) reg.counter_add("busy");
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const auto snap = reg.snapshot();
    const auto it = snap.counters.find("busy");
    const std::uint64_t seen = it == snap.counters.end() ? 0 : it->second;
    EXPECT_GE(seen, last);
    last = seen;
  }
  writer.join();
  EXPECT_EQ(reg.snapshot().counters.at("busy"), 5000U);
}

// The disabled fast path is one relaxed atomic load; even a generous
// wall-clock bound verifies there is no hidden locking or allocation.
TEST(MetricsRegistry, DisabledWritesAreCheap) {
  MetricsRegistry reg;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < 2'000'000; ++i) {
    reg.counter_add("hot");
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed.count(), 2.0);
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(GlobalRegistry, ToggleRoundTrips) {
  const bool was_enabled = enabled();
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(false);
  EXPECT_FALSE(enabled());
  set_enabled(was_enabled);
}

}  // namespace
}  // namespace soteria::obs
