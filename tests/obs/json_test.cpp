#include "obs/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "obs/export.h"
#include "obs/metrics.h"

namespace soteria::obs {
namespace {

TEST(JsonParser, ParsesScalars) {
  EXPECT_DOUBLE_EQ(json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(json::parse("-3.5e2").as_number(), -350.0);
  EXPECT_TRUE(json::parse("true").as_bool());
  EXPECT_FALSE(json::parse("false").as_bool());
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParser, DecodesStringEscapes) {
  EXPECT_EQ(json::parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(json::parse(R"("\u0041\u00e9")").as_string(), "A\xC3\xA9");
}

TEST(JsonParser, ParsesNestedStructures) {
  const auto doc = json::parse(
      R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "x"})");
  const auto& a = doc.at("a").as_array();
  ASSERT_EQ(a.size(), 3U);
  EXPECT_DOUBLE_EQ(a[0].as_number(), 1.0);
  EXPECT_TRUE(a[2].at("b").as_bool());
  EXPECT_TRUE(doc.at("c").at("d").is_null());
  EXPECT_TRUE(doc.contains("e"));
  EXPECT_FALSE(doc.contains("missing"));
  EXPECT_THROW((void)doc.at("missing"), std::runtime_error);
}

TEST(JsonParser, ParsesEmptyContainersAndWhitespace) {
  EXPECT_TRUE(json::parse(" { } ").as_object().empty());
  EXPECT_TRUE(json::parse("\n[\t]\r\n").as_array().empty());
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_THROW((void)json::parse(""), std::runtime_error);
  EXPECT_THROW((void)json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)json::parse("[1 2]"), std::runtime_error);
  EXPECT_THROW((void)json::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW((void)json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)json::parse("tru"), std::runtime_error);
  EXPECT_THROW((void)json::parse("1,2"), std::runtime_error);
  EXPECT_THROW((void)json::parse("{} extra"), std::runtime_error);
  EXPECT_THROW((void)json::parse(R"("bad \q escape")"), std::runtime_error);
}

TEST(JsonParser, TypeMismatchesThrow) {
  const auto v = json::parse("7");
  EXPECT_THROW((void)v.as_string(), std::runtime_error);
  EXPECT_THROW((void)v.as_array(), std::runtime_error);
  EXPECT_THROW((void)v.as_object(), std::runtime_error);
  EXPECT_THROW((void)v.as_bool(), std::runtime_error);
  EXPECT_THROW((void)v.at("k"), std::runtime_error);
}

// The exporter's contract: everything it writes must round-trip through
// this parser with values intact.
TEST(JsonExport, RoundTripsThroughParser) {
  MetricsRegistry reg(true);
  reg.counter_add("soteria.cfg.images", 12);
  reg.counter_add("events", 1);
  reg.gauge_set("loss", 0.25);
  reg.gauge_set("negative", -3.5);
  reg.record("score", 0.5);
  reg.record("score", 1.5);
  reg.record("score", 1e9);  // overflow bucket -> "le": null
  reg.record("t/stage", 2e-6);

  const auto snap = reg.snapshot();
  const auto doc = json::parse(export_json(snap));

  const auto& counters = doc.at("counters").as_object();
  ASSERT_EQ(counters.size(), snap.counters.size());
  for (const auto& [name, value] : snap.counters) {
    EXPECT_DOUBLE_EQ(counters.at(name).as_number(),
                     static_cast<double>(value));
  }

  const auto& gauges = doc.at("gauges").as_object();
  ASSERT_EQ(gauges.size(), snap.gauges.size());
  for (const auto& [name, value] : snap.gauges) {
    EXPECT_DOUBLE_EQ(gauges.at(name).as_number(), value);
  }

  const auto& histograms = doc.at("histograms").as_object();
  ASSERT_EQ(histograms.size(), snap.histograms.size());
  for (const auto& [name, data] : snap.histograms) {
    const auto& h = histograms.at(name);
    EXPECT_DOUBLE_EQ(h.at("count").as_number(),
                     static_cast<double>(data.count));
    EXPECT_DOUBLE_EQ(h.at("sum").as_number(), data.sum);
    EXPECT_DOUBLE_EQ(h.at("min").as_number(), data.min);
    EXPECT_DOUBLE_EQ(h.at("max").as_number(), data.max);
    EXPECT_DOUBLE_EQ(h.at("mean").as_number(), data.mean());
    std::uint64_t bucketed = 0;
    for (const auto& bucket : h.at("buckets").as_array()) {
      bucketed +=
          static_cast<std::uint64_t>(bucket.at("count").as_number());
      // Finite bounds parse as numbers; the overflow bucket is null.
      const auto& le = bucket.at("le");
      EXPECT_TRUE(le.is_null() || le.as_number() > 0.0);
    }
    EXPECT_EQ(bucketed, data.count);
  }
}

TEST(JsonExport, NonFiniteGaugeBecomesNull) {
  MetricsRegistry reg(true);
  reg.gauge_set("nan", std::numeric_limits<double>::quiet_NaN());
  const auto doc = json::parse(export_json(reg.snapshot()));
  EXPECT_TRUE(doc.at("gauges").at("nan").is_null());
}

TEST(JsonExport, EmptySnapshotIsValidJson) {
  const auto doc = json::parse(export_json(Snapshot{}));
  EXPECT_TRUE(doc.at("counters").as_object().empty());
  EXPECT_TRUE(doc.at("gauges").as_object().empty());
  EXPECT_TRUE(doc.at("histograms").as_object().empty());
}

TEST(JsonExport, EscapesAwkwardMetricNames)  {
  MetricsRegistry reg(true);
  reg.counter_add("weird \"name\"\\with\nescapes", 3);
  const auto doc = json::parse(export_json(reg.snapshot()));
  EXPECT_DOUBLE_EQ(
      doc.at("counters").at("weird \"name\"\\with\nescapes").as_number(),
      3.0);
}

TEST(TextExport, MentionsEverySection) {
  MetricsRegistry reg(true);
  reg.counter_add("events", 2);
  reg.gauge_set("loss", 0.5);
  reg.record("score", 1.0);
  reg.record("t/train", 0.01);
  reg.record("t/train/fit", 0.002);
  const auto text = export_text(reg.snapshot());
  EXPECT_NE(text.find("stage timings"), std::string::npos);
  EXPECT_NE(text.find("counters"), std::string::npos);
  EXPECT_NE(text.find("gauges"), std::string::npos);
  EXPECT_NE(text.find("distributions"), std::string::npos);
  EXPECT_NE(text.find("train"), std::string::npos);
  EXPECT_NE(text.find("fit"), std::string::npos);
  EXPECT_NE(text.find("events = 2"), std::string::npos);
}

TEST(TextExport, EmptySnapshotSaysSo) {
  EXPECT_NE(export_text(Snapshot{}).find("no metrics recorded"),
            std::string::npos);
}

}  // namespace
}  // namespace soteria::obs
