// End-to-end metrics correctness over the real pipeline: the same
// analyze_batch must produce identical counter values, identical
// histogram record counts, and identical value-histogram contents at
// every thread count (per-thread shards + span-context propagation
// make scheduling invisible); a disabled registry must record nothing;
// and every export must round-trip through the in-tree JSON parser.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "dataset/generator.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "soteria/presets.h"
#include "soteria/system.h"

namespace soteria::core {
namespace {

/// AnalyzeOptions with an explicit thread count.
AnalyzeOptions with_threads(std::size_t threads) {
  AnalyzeOptions options;
  options.num_threads = threads;
  return options;
}

// Shared tiny experiment, trained once with collect_metrics on so one
// test can assert on the training-time breakdown. The registry is
// reset and disabled afterwards; every test manages its own window.
struct ObsSystemFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    obs::registry().reset();
    obs::set_enabled(false);

    dataset::DatasetConfig data_config;
    data_config.scale = 0.008;
    math::Rng rng(23);
    data = new dataset::Dataset(
        dataset::generate_dataset(data_config, rng));

    SoteriaConfig config = tiny_config();
    config.seed = 23;
    config.collect_metrics = true;  // train() must switch collection on
    system = new SoteriaSystem(SoteriaSystem::train(data->train, config));
    train_snapshot = new obs::Snapshot(obs::registry().snapshot());

    obs::set_enabled(false);
    obs::registry().reset();

    cfgs = new std::vector<cfg::Cfg>();
    for (const auto& sample : data->test) cfgs->push_back(sample.cfg);
  }
  static void TearDownTestSuite() {
    obs::set_enabled(false);
    obs::registry().reset();
    delete cfgs;
    delete train_snapshot;
    delete system;
    delete data;
    cfgs = nullptr;
    train_snapshot = nullptr;
    system = nullptr;
    data = nullptr;
  }

  void TearDown() override {
    obs::set_enabled(false);
    obs::registry().reset();
  }

  /// One enabled analyze_batch window at the given thread count.
  static obs::Snapshot batch_snapshot(std::size_t threads) {
    obs::registry().reset();
    obs::set_enabled(true);
    const math::Rng rng(7);
    (void)system->analyze_batch(*cfgs, rng, with_threads(threads));
    obs::set_enabled(false);
    auto snap = obs::registry().snapshot();
    obs::registry().reset();
    return snap;
  }

  static bool is_span(const std::string& name) {
    return name.rfind(std::string(obs::kTimePrefix), 0) == 0;
  }

  static dataset::Dataset* data;
  static SoteriaSystem* system;
  static obs::Snapshot* train_snapshot;
  static std::vector<cfg::Cfg>* cfgs;
};

dataset::Dataset* ObsSystemFixture::data = nullptr;
SoteriaSystem* ObsSystemFixture::system = nullptr;
obs::Snapshot* ObsSystemFixture::train_snapshot = nullptr;
std::vector<cfg::Cfg>* ObsSystemFixture::cfgs = nullptr;

TEST_F(ObsSystemFixture, TrainingEmitsFullStageBreakdown) {
  const auto& h = train_snapshot->histograms;
  EXPECT_EQ(h.at("t/soteria.train").count, 1U);
  EXPECT_EQ(h.at("t/soteria.train/pipeline.fit").count, 1U);
  EXPECT_EQ(h.at("t/soteria.train/pipeline.fit/vocab.build").count, 1U);
  EXPECT_GT(h.at("t/soteria.train/pipeline.fit/cfg.label.dbl").count, 0U);
  EXPECT_GT(h.at("t/soteria.train/pipeline.fit/features.walks").count, 0U);
  EXPECT_GT(h.at("t/soteria.train/extract/pipeline.extract").count, 0U);
  EXPECT_GT(
      h.at("t/soteria.train/extract/pipeline.extract/features.ngrams").count,
      0U);
  EXPECT_GT(
      h.at("t/soteria.train/extract/pipeline.extract/features.tfidf").count,
      0U);
  EXPECT_EQ(h.at("t/soteria.train/detector.train").count, 1U);
  EXPECT_GT(h.at("t/soteria.train/detector.train/nn.epoch").count, 0U);
  EXPECT_EQ(h.at("t/soteria.train/classifier.train").count, 1U);

  // Span nesting: a child's total time cannot exceed its parent's.
  EXPECT_LE(h.at("t/soteria.train/pipeline.fit").sum,
            h.at("t/soteria.train").sum);

  EXPECT_GT(train_snapshot->counters.at("soteria.nn.epochs"), 0U);
  EXPECT_GT(train_snapshot->counters.at("soteria.features.walks"), 0U);
  EXPECT_GT(train_snapshot->counters.at("soteria.features.walk_steps"), 0U);
  EXPECT_TRUE(train_snapshot->gauges.count("soteria.nn.loss") == 1U);
  EXPECT_GT(train_snapshot->histograms.at("soteria.detector.score").count,
            0U);
}

TEST_F(ObsSystemFixture, AnalyzeBatchCountersMatchVerdicts) {
  obs::registry().reset();
  obs::set_enabled(true);
  const math::Rng rng(7);
  const auto verdicts = system->analyze_batch(*cfgs, rng, with_threads(1));
  obs::set_enabled(false);
  const auto snap = obs::registry().snapshot();

  std::size_t flagged = 0;
  for (const auto& v : verdicts) flagged += v.adversarial ? 1 : 0;

  EXPECT_EQ(snap.counters.at("soteria.detector.analyzed"), cfgs->size());
  EXPECT_EQ(snap.counters.at("soteria.classifier.predictions"),
            cfgs->size());
  const auto it = snap.counters.find("soteria.detector.flagged");
  const std::uint64_t counted =
      it == snap.counters.end() ? 0 : it->second;
  EXPECT_EQ(counted, flagged);
  EXPECT_EQ(snap.histograms.at("soteria.detector.sample_error").count,
            cfgs->size());
  EXPECT_EQ(snap.histograms.at("t/soteria.analyze_batch").count, 1U);
  EXPECT_EQ(
      snap.histograms.at("t/soteria.analyze_batch/pipeline.extract").count,
      cfgs->size());
}

// The tentpole invariant: aggregation is identical at 1, 4, and
// hardware_threads() threads — counters and gauges exactly, histogram
// record counts exactly, and value-histogram contents exactly (the
// recorded values are deterministic; only timing durations vary).
TEST_F(ObsSystemFixture, AggregationIsThreadCountInvariant) {
  const auto reference = batch_snapshot(1);
  ASSERT_FALSE(reference.empty());

  for (const std::size_t threads :
       {std::size_t{4}, runtime::hardware_threads()}) {
    const auto snap = batch_snapshot(threads);

    EXPECT_EQ(snap.counters, reference.counters)
        << "counter mismatch at " << threads << " threads";
    EXPECT_EQ(snap.gauges, reference.gauges)
        << "gauge mismatch at " << threads << " threads";

    ASSERT_EQ(snap.histograms.size(), reference.histograms.size());
    for (const auto& [name, expected] : reference.histograms) {
      ASSERT_EQ(snap.histograms.count(name), 1U)
          << "missing histogram " << name << " at " << threads
          << " threads";
      const auto& actual = snap.histograms.at(name);
      EXPECT_EQ(actual.count, expected.count)
          << name << " count at " << threads << " threads";
      if (!is_span(name)) {
        // Deterministic values: identical multiset, so identical
        // buckets and range; the sum may differ only by merge order.
        EXPECT_EQ(actual.buckets, expected.buckets)
            << name << " buckets at " << threads << " threads";
        EXPECT_DOUBLE_EQ(actual.min, expected.min) << name;
        EXPECT_DOUBLE_EQ(actual.max, expected.max) << name;
        EXPECT_NEAR(actual.sum, expected.sum,
                    1e-9 * (1.0 + std::abs(expected.sum)))
            << name;
      }
    }
  }
}

TEST_F(ObsSystemFixture, DisabledRegistryRecordsNothingDuringAnalysis) {
  obs::registry().reset();
  ASSERT_FALSE(obs::enabled());
  const math::Rng rng(7);
  (void)system->analyze_batch(*cfgs, rng, with_threads(4));
  EXPECT_TRUE(obs::registry().snapshot().empty());
}

TEST_F(ObsSystemFixture, ExportsRoundTripThroughJsonParser) {
  const auto snap = batch_snapshot(1);
  const auto doc = obs::json::parse(obs::export_json(snap));

  const auto& counters = doc.at("counters").as_object();
  ASSERT_EQ(counters.size(), snap.counters.size());
  for (const auto& [name, value] : snap.counters) {
    EXPECT_DOUBLE_EQ(counters.at(name).as_number(),
                     static_cast<double>(value));
  }
  const auto& histograms = doc.at("histograms").as_object();
  ASSERT_EQ(histograms.size(), snap.histograms.size());
  for (const auto& [name, data] : snap.histograms) {
    EXPECT_DOUBLE_EQ(histograms.at(name).at("count").as_number(),
                     static_cast<double>(data.count));
  }

  // The text report names the major stages.
  const auto text = obs::export_text(snap);
  for (const char* needle :
       {"soteria.analyze_batch", "pipeline.extract", "features.ngrams",
        "detector.score", "classifier.predict",
        "soteria.detector.analyzed"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "text report missing " << needle;
  }
}

}  // namespace
}  // namespace soteria::core
