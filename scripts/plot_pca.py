#!/usr/bin/env python3
"""Plot the scatter CSVs the fig8-fig11 benches emit.

Usage:
    python3 scripts/plot_pca.py fig11_pca_ae.csv [out.png]

Requires matplotlib (not needed for the benches themselves — they print
centroid/spread tables; this script just draws the paper-style scatter).
"""
import csv
import sys
from collections import defaultdict


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    path = sys.argv[1]
    out = sys.argv[2] if len(sys.argv) > 2 else path.rsplit(".", 1)[0] + ".png"

    groups = defaultdict(lambda: ([], []))
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            xs, ys = groups[row["group"]]
            xs.append(float(row["pc1"]))
            ys.append(float(row["pc2"]))

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not installed; summary only:")
        for name, (xs, ys) in sorted(groups.items()):
            cx = sum(xs) / len(xs)
            cy = sum(ys) / len(ys)
            print(f"  {name}: n={len(xs)} centroid=({cx:.3f}, {cy:.3f})")
        return 0

    markers = ["o", "s", "^", "D", "v", "P"]
    fig, ax = plt.subplots(figsize=(6, 5))
    for i, (name, (xs, ys)) in enumerate(sorted(groups.items())):
        ax.scatter(xs, ys, s=14, alpha=0.6, marker=markers[i % len(markers)],
                   label=name)
    ax.set_xlabel("PC1")
    ax.set_ylabel("PC2")
    ax.legend()
    ax.set_title(path)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
