// Regenerates Fig. 9: PCA of the density-based (DBL) feature vectors —
// (a) per-class distribution, (b) clean vs GEA adversarial examples.
#include "common/feature_pca.h"

int main() {
  return soteria::bench::run_feature_pca(
      soteria::bench::FeatureView::kDbl, "Fig. 9 ", "fig9_pca");
}
