// Regenerates Table II: the per-class distribution of the corpus across
// train and test splits.
#include <cstdio>

#include "common/harness.h"
#include "eval/table.h"

int main() {
  using namespace soteria;
  const auto config = bench::config_from_env();

  dataset::DatasetConfig data_config;
  data_config.scale = config.dataset_scale;
  math::Rng rng(config.seed);
  const auto data = dataset::generate_dataset(data_config, rng);

  const auto train_counts = dataset::Dataset::class_counts(data.train);
  const auto test_counts = dataset::Dataset::class_counts(data.test);

  eval::Table table({"Class", "# Train", "# Test", "# Total", "% of corpus"});
  std::size_t total = 0;
  for (auto f : dataset::all_families()) {
    total += train_counts[dataset::family_index(f)] +
             test_counts[dataset::family_index(f)];
  }
  for (auto f : dataset::all_families()) {
    const auto i = dataset::family_index(f);
    const std::size_t class_total = train_counts[i] + test_counts[i];
    table.add_row({dataset::family_name(f), std::to_string(train_counts[i]),
                   std::to_string(test_counts[i]),
                   std::to_string(class_total),
                   eval::format_percent(static_cast<double>(class_total) /
                                        static_cast<double>(total))});
  }
  table.add_row({"Overall",
                 std::to_string(data.train.size()),
                 std::to_string(data.test.size()), std::to_string(total),
                 "100.00"});
  std::printf("%s\n",
              table
                  .render("Table II: IoT samples distribution across "
                          "classes (scaled reproduction)")
                  .c_str());
  std::printf("paper full-scale totals: Benign 3016, Gafgyt 11085, Mirai "
              "2365, Tsunami 260 (16726 samples, 80/20 split)\n");
  return 0;
}
