// Regenerates Table VI: detector behaviour over clean test samples —
// per class: #samples, #flagged as AE (false positives), %DE. Lower is
// better; the paper reports 6.16% overall, all from Gafgyt.
#include <cstdio>

#include "common/evaluation.h"
#include "eval/table.h"

int main() {
  using namespace soteria;
  auto experiment = bench::prepare_experiment();
  auto rng = bench::evaluation_rng(experiment.config);
  const auto clean = bench::evaluate_clean(experiment, rng);

  eval::Table table({"Class", "# Samples", "# DE", "% DE"});
  std::size_t total = 0;
  std::size_t flagged = 0;
  for (auto family : dataset::all_families()) {
    std::size_t class_total = 0;
    std::size_t class_flagged = 0;
    for (const auto& s : clean) {
      if (s.truth != family) continue;
      ++class_total;
      if (s.flagged) ++class_flagged;
    }
    total += class_total;
    flagged += class_flagged;
    table.add_row({dataset::family_name(family),
                   std::to_string(class_total),
                   std::to_string(class_flagged),
                   class_total == 0
                       ? "-"
                       : eval::format_percent(
                             static_cast<double>(class_flagged) /
                             static_cast<double>(class_total))});
  }
  table.add_row({"Overall", std::to_string(total), std::to_string(flagged),
                 total == 0 ? "-"
                            : eval::format_percent(
                                  static_cast<double>(flagged) /
                                  static_cast<double>(total))});
  std::printf("%s\n",
              table
                  .render("Table VI: detector false positives over clean "
                          "samples (lower is better)")
                  .c_str());
  std::printf("paper: 6.16%% overall, all 206 false positives from "
              "Gafgyt; Benign/Mirai/Tsunami at 0%%\n");
  return 0;
}
