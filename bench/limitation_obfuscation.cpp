// Reproduces the paper's stated limitation (Section V): obfuscation
// that hides control flow yields an incomplete CFG and degrades the
// system. Sweeps the fraction of direct jumps replaced by statically
// unresolvable words and reports classifier accuracy and detector flag
// rate on the obfuscated clean test set.
#include <cstdio>

#include "attack/obfuscation.h"
#include "cfg/extractor.h"
#include "common/harness.h"
#include "eval/table.h"

int main() {
  using namespace soteria;
  auto experiment = bench::prepare_experiment();
  auto rng = bench::evaluation_rng(experiment.config);
  auto& system = experiment.system;

  eval::Table table({"Jump obfuscation", "Classifier acc %",
                     "Flagged as AE %", "Mean CFG edge loss %"});
  for (const double fraction : {0.0, 0.25, 0.5, 1.0}) {
    std::size_t correct = 0;
    std::size_t flagged = 0;
    double edge_loss = 0.0;
    std::size_t counted = 0;
    for (const auto& sample : experiment.data.test) {
      const auto obfuscated =
          attack::indirect_branches(sample.binary, fraction, rng);
      const auto cfg = cfg::extract(obfuscated);
      if (cfg.node_count() == 0) continue;
      ++counted;
      const auto before = static_cast<double>(sample.cfg.edge_count());
      if (before > 0.0) {
        edge_loss +=
            1.0 - static_cast<double>(cfg.edge_count()) / before;
      }
      const auto verdict = system.analyze(cfg, rng);
      correct += verdict.predicted == sample.family;
      flagged += verdict.adversarial;
    }
    table.add_row(
        {eval::format_percent(fraction, 0),
         eval::format_percent(static_cast<double>(correct) /
                              static_cast<double>(counted)),
         eval::format_percent(static_cast<double>(flagged) /
                              static_cast<double>(counted)),
         eval::format_percent(edge_loss / static_cast<double>(counted))});
  }
  std::printf("%s\n",
              table
                  .render("Limitation: classifier/detector behaviour "
                          "under control-flow obfuscation")
                  .c_str());
  std::printf("paper (Section V): obfuscation is a stated blind spot — "
              "accuracy should degrade as the extracted CFG loses "
              "edges\n");
  return 0;
}
