// Regenerates Fig. 12 (the paper's threshold trade-off curve): sweeping
// the raw detection threshold across the observed score range and
// reporting, for each point, the AE detection sensitivity and the
// clean-sample misdetection rate — an ROC-style characterization of the
// detector, including its AUC.
#include <algorithm>
#include <cstdio>

#include "common/evaluation.h"
#include "eval/table.h"

int main() {
  using namespace soteria;
  auto experiment = bench::prepare_experiment();
  auto rng = bench::evaluation_rng(experiment.config);
  const auto clean = bench::evaluate_clean(experiment, rng);
  const auto aes = bench::evaluate_adversarial(experiment, rng);

  std::vector<double> clean_scores;
  clean_scores.reserve(clean.size());
  for (const auto& s : clean) clean_scores.push_back(s.reconstruction_error);
  std::vector<double> ae_scores;
  ae_scores.reserve(aes.size());
  for (const auto& a : aes) ae_scores.push_back(a.reconstruction_error);

  const double lo =
      std::min(*std::min_element(clean_scores.begin(), clean_scores.end()),
               *std::min_element(ae_scores.begin(), ae_scores.end()));
  const double hi =
      std::max(*std::max_element(clean_scores.begin(), clean_scores.end()),
               *std::max_element(ae_scores.begin(), ae_scores.end()));

  eval::Table table({"Threshold", "AE sensitivity %", "Clean misdetect %"});
  constexpr int kSteps = 20;
  for (int i = 0; i <= kSteps; ++i) {
    const double threshold =
        lo + (hi - lo) * static_cast<double>(i) / kSteps;
    std::size_t detected = 0;
    for (double v : ae_scores) detected += v > threshold;
    std::size_t flagged = 0;
    for (double v : clean_scores) flagged += v > threshold;
    table.add_row(
        {eval::format_double(threshold, 4),
         eval::format_percent(static_cast<double>(detected) /
                              static_cast<double>(ae_scores.size())),
         eval::format_percent(static_cast<double>(flagged) /
                              static_cast<double>(clean_scores.size()))});
  }
  std::printf("%s\n",
              table
                  .render("Fig. 12: detection sensitivity vs clean "
                          "misdetection across thresholds")
                  .c_str());

  // AUC by rank comparison (probability a random AE outscores a random
  // clean sample).
  std::size_t wins = 0;
  std::size_t ties = 0;
  for (double a : ae_scores) {
    for (double c : clean_scores) {
      if (a > c) {
        ++wins;
      } else if (a == c) {
        ++ties;
      }
    }
  }
  const double auc =
      (static_cast<double>(wins) + 0.5 * static_cast<double>(ties)) /
      (static_cast<double>(ae_scores.size()) *
       static_cast<double>(clean_scores.size()));
  std::printf("detector AUC: %.4f (1.0 = perfect separation)\n", auc);
  std::printf("operating threshold (alpha=%.1f): %.4f\n",
              experiment.system.detector().alpha(),
              experiment.system.detector().threshold());
  return 0;
}
