#include "common/feature_pca.h"

#include <cstdio>

#include "common/evaluation.h"
#include "common/harness.h"
#include "common/pca_report.h"

namespace soteria::bench {

namespace {

std::vector<float> view_vector(const features::SampleFeatures& features,
                               FeatureView view) {
  switch (view) {
    case FeatureView::kDbl:
      return features.pooled_dbl;
    case FeatureView::kLbl:
      return features.pooled_lbl;
    case FeatureView::kCombined:
      return features.pooled_combined();
  }
  return {};
}

}  // namespace

int run_feature_pca(FeatureView view, const std::string& figure_name,
                    const std::string& csv_stem) {
  auto experiment = prepare_experiment();
  auto rng = evaluation_rng(experiment.config);
  const auto& pipeline = experiment.system.pipeline();

  // (a) per-class distribution over clean samples (paper: 200/class).
  constexpr std::size_t kPerClass = 200;
  std::vector<std::vector<float>> rows;
  std::vector<std::string> groups;
  std::array<std::size_t, dataset::kFamilyCount> counted{};
  for (const auto& sample : experiment.data.train) {
    auto& count = counted[dataset::family_index(sample.family)];
    if (count >= kPerClass) continue;
    ++count;
    rows.push_back(view_vector(pipeline.extract(sample.cfg, rng), view));
    groups.push_back(dataset::family_name(sample.family));
  }
  math::Matrix class_features(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::copy(rows[r].begin(), rows[r].end(),
              class_features.row(r).begin());
  }
  print_pca_report(project_2d(class_features, groups),
                   figure_name + "(a): per-class distribution of clean "
                                 "samples",
                   csv_stem + "_classes.csv");

  // (b) clean vs GEA AEs over the test split (one medium target per
  // class keeps the run affordable; the full set behaves the same).
  std::vector<std::vector<float>> versus_rows;
  std::vector<std::string> versus_groups;
  for (const auto& sample : experiment.data.test) {
    versus_rows.push_back(
        view_vector(pipeline.extract(sample.cfg, rng), view));
    versus_groups.push_back("Clean");
  }
  for (auto family : dataset::all_families()) {
    const auto& target =
        experiment.target(family, dataset::TargetSize::kMedium);
    const auto aes =
        dataset::generate_adversarial_set(experiment.data.test, target);
    for (std::size_t i = 0; i < aes.size(); i += 4) {  // subsample 25%
      versus_rows.push_back(
          view_vector(pipeline.extract(aes[i].cfg, rng), view));
      versus_groups.push_back("Adversarial");
    }
  }
  math::Matrix versus(versus_rows.size(), versus_rows.front().size());
  for (std::size_t r = 0; r < versus_rows.size(); ++r) {
    std::copy(versus_rows[r].begin(), versus_rows[r].end(),
              versus.row(r).begin());
  }
  print_pca_report(project_2d(versus, versus_groups),
                   figure_name + "(b): clean vs GEA adversarial examples",
                   csv_stem + "_ae.csv");
  std::printf("\npaper shape: clean and adversarial points form "
              "distinguishable clusters, most visibly in the combined "
              "view (Fig. 11b)\n");
  return 0;
}

}  // namespace soteria::bench
