// Shared experiment harness for the table/figure bench binaries.
//
// Every bench needs the same expensive preamble: generate the corpus,
// train (or load from cache) the Soteria system, pick the 12 GEA
// targets, and extract test features. The harness centralizes that and
// honours environment overrides so the whole suite can be re-run at a
// different scale without recompiling:
//
//   SOTERIA_SCALE   corpus scale factor        (default 0.04)
//   SOTERIA_SEED    master seed                (default 42)
//   SOTERIA_CACHE   model cache directory      (default .soteria_cache;
//                   set to "off" to disable)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/adversarial.h"
#include "dataset/generator.h"
#include "soteria/presets.h"
#include "soteria/system.h"

namespace soteria::bench {

/// Harness-level configuration.
struct HarnessConfig {
  double dataset_scale = 0.04;
  std::uint64_t seed = 42;
  core::SoteriaConfig soteria = core::cpu_scaled_config();
  std::string cache_dir = ".soteria_cache";
};

/// Reads environment overrides on top of the defaults.
[[nodiscard]] HarnessConfig config_from_env();

/// A fully prepared experiment: corpus, trained system, GEA targets.
struct Experiment {
  HarnessConfig config;
  dataset::Dataset data;
  core::SoteriaSystem system;
  std::vector<dataset::GeaTarget> targets;  ///< 12: class-major x size

  /// The target for (family, size).
  [[nodiscard]] const dataset::GeaTarget& target(
      dataset::Family family, dataset::TargetSize size) const;
};

/// Builds the experiment, reusing a cached trained system when the
/// (scale, seed) key matches. Prints progress to stderr.
[[nodiscard]] Experiment prepare_experiment(const HarnessConfig& config);
[[nodiscard]] Experiment prepare_experiment();

/// Derives the per-run RNG benches should use for walk extraction, so
/// results are reproducible but decorrelated from training draws.
[[nodiscard]] math::Rng evaluation_rng(const HarnessConfig& config);

}  // namespace soteria::bench
