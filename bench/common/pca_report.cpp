#include "common/pca_report.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>

#include "eval/table.h"
#include "math/pca.h"

namespace soteria::bench {

PcaReport project_2d(const math::Matrix& features,
                     const std::vector<std::string>& groups) {
  if (features.rows() != groups.size()) {
    throw std::invalid_argument("project_2d: row/label mismatch");
  }
  const auto pca = math::Pca::fit(features, 2);
  const auto scores = pca.transform(features);

  PcaReport report;
  report.explained_variance_ratio_pc1 = pca.explained_variance_ratio()[0];
  report.explained_variance_ratio_pc2 = pca.explained_variance_ratio()[1];
  report.points.reserve(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    report.points.push_back(
        PcaPoint{groups[i], scores(i, 0), scores(i, 1)});
  }
  return report;
}

namespace {

struct GroupStats {
  std::size_t count = 0;
  double sum1 = 0.0, sum2 = 0.0;
  double sumsq1 = 0.0, sumsq2 = 0.0;

  [[nodiscard]] double mean1() const { return sum1 / count_d(); }
  [[nodiscard]] double mean2() const { return sum2 / count_d(); }
  [[nodiscard]] double spread() const {
    const double var1 = sumsq1 / count_d() - mean1() * mean1();
    const double var2 = sumsq2 / count_d() - mean2() * mean2();
    return std::sqrt(std::max(0.0, var1) + std::max(0.0, var2));
  }

 private:
  [[nodiscard]] double count_d() const {
    return static_cast<double>(count);
  }
};

}  // namespace

void print_pca_report(const PcaReport& report, const std::string& title,
                      const std::string& csv_path) {
  std::map<std::string, GroupStats> stats;
  for (const auto& p : report.points) {
    auto& g = stats[p.group];
    ++g.count;
    g.sum1 += p.pc1;
    g.sum2 += p.pc2;
    g.sumsq1 += p.pc1 * p.pc1;
    g.sumsq2 += p.pc2 * p.pc2;
  }

  eval::Table table({"Group", "N", "Centroid PC1", "Centroid PC2",
                     "Spread"});
  for (const auto& [name, g] : stats) {
    table.add_row({name, std::to_string(g.count),
                   eval::format_double(g.mean1()),
                   eval::format_double(g.mean2()),
                   eval::format_double(g.spread())});
  }
  std::printf("%s\n", table.render(title).c_str());
  std::printf("explained variance: PC1 %.1f%%, PC2 %.1f%%\n",
              100.0 * report.explained_variance_ratio_pc1,
              100.0 * report.explained_variance_ratio_pc2);

  // Separation score: mean pairwise centroid distance over mean spread.
  double pair_sum = 0.0;
  std::size_t pair_count = 0;
  double spread_sum = 0.0;
  for (auto it = stats.begin(); it != stats.end(); ++it) {
    spread_sum += it->second.spread();
    for (auto jt = std::next(it); jt != stats.end(); ++jt) {
      const double d1 = it->second.mean1() - jt->second.mean1();
      const double d2 = it->second.mean2() - jt->second.mean2();
      pair_sum += std::sqrt(d1 * d1 + d2 * d2);
      ++pair_count;
    }
  }
  if (pair_count > 0 && spread_sum > 0.0) {
    const double separation = (pair_sum / static_cast<double>(pair_count)) /
                              (spread_sum / static_cast<double>(stats.size()));
    std::printf("separation score (inter-centroid / intra-spread): %.3f "
                "(higher = more separable)\n",
                separation);
  }

  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    if (csv) {
      csv << "group,pc1,pc2\n";
      for (const auto& p : report.points) {
        csv << p.group << ',' << p.pc1 << ',' << p.pc2 << '\n';
      }
      std::printf("scatter written to %s\n", csv_path.c_str());
    }
  }
}

}  // namespace soteria::bench
