// Shared evaluation passes over a prepared experiment: score every
// clean test sample and every GEA adversarial example once, then let
// each bench binary slice the results into its table or figure.
#pragma once

#include <vector>

#include "common/harness.h"
#include "eval/metrics.h"

namespace soteria::bench {

/// One scored clean test sample.
struct CleanEval {
  dataset::Family truth = dataset::Family::kBenign;
  double reconstruction_error = 0.0;
  bool flagged = false;                        ///< detector verdict
  dataset::Family voted = dataset::Family::kBenign;     ///< 2-CNN vote
  dataset::Family dbl_only = dataset::Family::kBenign;  ///< DBL CNN vote
  dataset::Family lbl_only = dataset::Family::kBenign;  ///< LBL CNN vote
};

/// One scored adversarial example.
struct AeEval {
  dataset::Family original = dataset::Family::kBenign;
  dataset::Family target = dataset::Family::kBenign;
  dataset::TargetSize size = dataset::TargetSize::kSmall;
  double reconstruction_error = 0.0;
  bool flagged = false;
  dataset::Family voted = dataset::Family::kBenign;
};

/// Scores every clean test sample (detector RE + all three classifier
/// verdicts). Deterministic given `rng`.
[[nodiscard]] std::vector<CleanEval> evaluate_clean(Experiment& experiment,
                                                    math::Rng& rng);

/// Generates all 12 GEA adversarial sets over the test split and scores
/// each AE.
[[nodiscard]] std::vector<AeEval> evaluate_adversarial(
    Experiment& experiment, math::Rng& rng);

}  // namespace soteria::bench
