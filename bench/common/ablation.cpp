#include "common/ablation.h"

#include <cstdio>
#include <cstdlib>

#include "common/evaluation.h"
#include "eval/table.h"

namespace soteria::bench {

std::vector<AblationResult> run_ablation(
    const std::vector<AblationSetting>& settings) {
  HarnessConfig base = config_from_env();
  base.dataset_scale = 0.02;  // ablations retrain per setting
  if (const char* scale = std::getenv("SOTERIA_ABLATION_SCALE")) {
    base.dataset_scale = std::strtod(scale, nullptr);
  }
  base.cache_dir = "off";  // every setting trains fresh

  std::fprintf(stderr, "[ablation] corpus scale %.4f, %zu settings\n",
               base.dataset_scale, settings.size());
  dataset::DatasetConfig data_config;
  data_config.scale = base.dataset_scale;
  math::Rng data_rng(base.seed);
  const auto data = dataset::generate_dataset(data_config, data_rng);

  std::vector<AblationResult> results;
  for (const auto& setting : settings) {
    std::fprintf(stderr, "[ablation] training setting '%s'...\n",
                 setting.name.c_str());
    core::SoteriaConfig config = base.soteria;
    setting.apply(config);

    Experiment experiment;
    experiment.config = base;
    experiment.data = data;
    experiment.system = core::SoteriaSystem::train(data.train, config);
    std::vector<dataset::Sample> everything = data.train;
    everything.insert(everything.end(), data.test.begin(),
                      data.test.end());
    experiment.targets = dataset::select_all_targets(everything);

    auto rng = evaluation_rng(base);
    const auto clean = evaluate_clean(experiment, rng);
    const auto aes = evaluate_adversarial(experiment, rng);

    AblationResult result;
    result.name = setting.name;
    std::size_t flagged = 0;
    std::size_t correct = 0;
    for (const auto& s : clean) {
      flagged += s.flagged;
      correct += s.voted == s.truth;
    }
    std::size_t detected = 0;
    for (const auto& a : aes) detected += a.flagged;
    result.detector_false_positive =
        clean.empty() ? 0.0
                      : static_cast<double>(flagged) /
                            static_cast<double>(clean.size());
    result.classifier_accuracy =
        clean.empty() ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(clean.size());
    result.detector_detection_rate =
        aes.empty() ? 0.0
                    : static_cast<double>(detected) /
                          static_cast<double>(aes.size());
    results.push_back(std::move(result));
  }
  return results;
}

void print_ablation(const std::vector<AblationResult>& results,
                    const std::string& title) {
  eval::Table table({"Setting", "AE detection %", "Clean FP %",
                     "Classifier acc %"});
  for (const auto& r : results) {
    table.add_row({r.name, eval::format_percent(r.detector_detection_rate),
                   eval::format_percent(r.detector_false_positive),
                   eval::format_percent(r.classifier_accuracy)});
  }
  std::printf("%s\n", table.render(title).c_str());
}

}  // namespace soteria::bench
