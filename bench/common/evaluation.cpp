#include "common/evaluation.h"

#include <cstdio>

namespace soteria::bench {

std::vector<CleanEval> evaluate_clean(Experiment& experiment,
                                      math::Rng& rng) {
  std::vector<CleanEval> results;
  results.reserve(experiment.data.test.size());
  auto& system = experiment.system;
  for (const auto& sample : experiment.data.test) {
    const auto features = system.extract(sample.cfg, rng);
    CleanEval eval;
    eval.truth = sample.family;
    eval.reconstruction_error =
        system.detector().sample_error(core::pooled_matrix(features));
    eval.flagged =
        eval.reconstruction_error > system.detector().threshold();
    eval.voted = system.classifier().predict(features);
    eval.dbl_only = system.classifier().predict_dbl_only(features);
    eval.lbl_only = system.classifier().predict_lbl_only(features);
    results.push_back(eval);
  }
  return results;
}

std::vector<AeEval> evaluate_adversarial(Experiment& experiment,
                                         math::Rng& rng) {
  std::vector<AeEval> results;
  auto& system = experiment.system;
  for (const auto& target : experiment.targets) {
    const auto aes =
        dataset::generate_adversarial_set(experiment.data.test, target);
    std::fprintf(stderr, "[eval] %s/%s target: %zu AEs\n",
                 dataset::family_name(target.family),
                 dataset::target_size_name(target.size), aes.size());
    for (const auto& ae : aes) {
      const auto features = system.extract(ae.cfg, rng);
      AeEval eval;
      eval.original = ae.original_family;
      eval.target = ae.target_family;
      eval.size = ae.target_size;
      eval.reconstruction_error =
          system.detector().sample_error(core::pooled_matrix(features));
      eval.flagged =
          eval.reconstruction_error > system.detector().threshold();
      eval.voted = system.classifier().predict(features);
      results.push_back(eval);
    }
  }
  return results;
}

}  // namespace soteria::bench
