// Read-merge-write helper for the repo-root BENCH_perf.json: a flat
// machine-readable summary of the perf benchmarks, one top-level
// section per bench binary, each mapping a metric name to a number
// (stage means in ms, sweep timings, ...). Benches update only their
// own section, so running perf_features and perf_graph in either order
// converges to the same document.
#pragma once

#include <map>
#include <string>

#include "obs/metrics.h"

namespace soteria::bench {

/// Replaces the `section` object of the JSON document at `path` with
/// `values` (created if absent; other sections preserved — a bench owns
/// its section, so stale keys from an older sweep shape never linger)
/// and rewrites the file with sorted keys and stable formatting.
/// Returns false (without throwing) when the file cannot be written; a
/// malformed existing document is replaced rather than merged.
bool update_perf_json(const std::string& path, const std::string& section,
                      const std::map<std::string, double>& values);

/// Per-stage mean latencies in milliseconds from a metrics snapshot:
/// every span-timing histogram ("t/..." names), keyed by its full
/// span path with the prefix stripped.
[[nodiscard]] std::map<std::string, double> stage_means_ms(
    const obs::Snapshot& snapshot);

}  // namespace soteria::bench
