// Shared driver for the ablation benches: retrains the full system
// under a sequence of config variants and reports detector and
// classifier quality side by side. Ablations default to a smaller
// corpus than the table benches (override with SOTERIA_ABLATION_SCALE).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/harness.h"

namespace soteria::bench {

/// One ablation setting: a label and a config mutation.
struct AblationSetting {
  std::string name;
  std::function<void(core::SoteriaConfig&)> apply;
};

/// Quality summary for one setting.
struct AblationResult {
  std::string name;
  double detector_detection_rate = 0.0;   ///< over all 12 GEA sets
  double detector_false_positive = 0.0;   ///< over clean test
  double classifier_accuracy = 0.0;       ///< voting, clean test
};

/// Trains + evaluates each setting on the same corpus. Prints progress
/// to stderr.
[[nodiscard]] std::vector<AblationResult> run_ablation(
    const std::vector<AblationSetting>& settings);

/// Renders results as a table with the given title.
void print_ablation(const std::vector<AblationResult>& results,
                    const std::string& title);

}  // namespace soteria::bench
