// Shared implementation for the Fig. 9/10/11 benches: PCA of Soteria's
// walk features — per-class distribution of clean samples (sub-figure
// a) and clean vs. GEA adversarial examples (sub-figure b) — for one
// feature view (DBL, LBL, or combined).
#pragma once

#include <string>

namespace soteria::bench {

/// Which slice of the feature bundle to project.
enum class FeatureView { kDbl, kLbl, kCombined };

/// Runs the full experiment and prints both sub-figure reports; also
/// writes scatter CSVs named `<stem>_classes.csv` / `<stem>_ae.csv`.
/// Returns the process exit code.
int run_feature_pca(FeatureView view, const std::string& figure_name,
                    const std::string& csv_stem);

}  // namespace soteria::bench
