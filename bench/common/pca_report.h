// Shared PCA reporting for the Fig. 8-11 benches: project labeled
// feature vectors onto two principal components, print per-group
// centroids/spreads and a separation score, and dump the full scatter
// to CSV for plotting.
#pragma once

#include <string>
#include <vector>

#include "math/matrix.h"

namespace soteria::bench {

/// One projected point with its group label.
struct PcaPoint {
  std::string group;
  double pc1 = 0.0;
  double pc2 = 0.0;
};

/// Result of a 2-component PCA over grouped observations.
struct PcaReport {
  std::vector<PcaPoint> points;
  double explained_variance_ratio_pc1 = 0.0;
  double explained_variance_ratio_pc2 = 0.0;
};

/// Fits PCA(2) on `features` (rows parallel to `groups`) and projects.
/// Throws std::invalid_argument on row/label mismatch or < 2 rows.
[[nodiscard]] PcaReport project_2d(const math::Matrix& features,
                                   const std::vector<std::string>& groups);

/// Prints per-group centroid / spread and the mean inter-centroid
/// distance normalized by mean intra-group spread (higher = more
/// separable), then writes "group,pc1,pc2" rows to `csv_path` (skipped
/// if empty).
void print_pca_report(const PcaReport& report, const std::string& title,
                      const std::string& csv_path);

}  // namespace soteria::bench
