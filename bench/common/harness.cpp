#include "common/harness.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>

namespace soteria::bench {

HarnessConfig config_from_env() {
  HarnessConfig config;
  if (const char* scale = std::getenv("SOTERIA_SCALE")) {
    config.dataset_scale = std::strtod(scale, nullptr);
    if (!(config.dataset_scale > 0.0)) {
      throw std::invalid_argument("SOTERIA_SCALE must be positive");
    }
  }
  if (const char* seed = std::getenv("SOTERIA_SEED")) {
    config.seed = std::strtoull(seed, nullptr, 10);
  }
  if (const char* cache = std::getenv("SOTERIA_CACHE")) {
    config.cache_dir = cache;
  }
  config.soteria.seed = config.seed;
  return config;
}

const dataset::GeaTarget& Experiment::target(dataset::Family family,
                                             dataset::TargetSize size) const {
  const std::size_t index = dataset::family_index(family) *
                                dataset::kTargetSizeCount +
                            static_cast<std::size_t>(size);
  if (index >= targets.size()) {
    throw std::out_of_range("Experiment::target: no targets selected");
  }
  return targets[index];
}

namespace {

std::string cache_path(const HarnessConfig& config) {
  char name[128];
  std::snprintf(name, sizeof(name), "soteria_s%.4f_seed%llu.bin",
                config.dataset_scale,
                static_cast<unsigned long long>(config.seed));
  return config.cache_dir + "/" + name;
}

}  // namespace

Experiment prepare_experiment(const HarnessConfig& config) {
  Experiment experiment;
  experiment.config = config;

  std::fprintf(stderr, "[harness] generating corpus (scale %.4f, seed %llu)\n",
               config.dataset_scale,
               static_cast<unsigned long long>(config.seed));
  dataset::DatasetConfig data_config;
  data_config.scale = config.dataset_scale;
  math::Rng data_rng(config.seed);
  experiment.data = dataset::generate_dataset(data_config, data_rng);
  std::fprintf(stderr, "[harness] corpus: %zu train / %zu test\n",
               experiment.data.train.size(), experiment.data.test.size());

  const bool cache_enabled = config.cache_dir != "off";
  const std::string path = cache_path(config);
  bool loaded = false;
  if (cache_enabled && std::filesystem::exists(path)) {
    try {
      experiment.system = core::SoteriaSystem::load_file(path);
      loaded = true;
      std::fprintf(stderr, "[harness] loaded trained system from %s\n",
                   path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[harness] cache load failed (%s); retraining\n",
                   e.what());
    }
  }
  if (!loaded) {
    std::fprintf(stderr, "[harness] training Soteria...\n");
    experiment.system =
        core::SoteriaSystem::train(experiment.data.train, config.soteria);
    if (cache_enabled) {
      std::error_code ec;
      std::filesystem::create_directories(config.cache_dir, ec);
      if (!ec) {
        experiment.system.save_file(path);
        std::fprintf(stderr, "[harness] cached trained system at %s\n",
                     path.c_str());
      }
    }
  }

  // GEA targets come from the whole corpus (paper: "in the dataset").
  std::vector<dataset::Sample> everything = experiment.data.train;
  everything.insert(everything.end(), experiment.data.test.begin(),
                    experiment.data.test.end());
  experiment.targets = dataset::select_all_targets(everything);
  return experiment;
}

Experiment prepare_experiment() { return prepare_experiment(config_from_env()); }

math::Rng evaluation_rng(const HarnessConfig& config) {
  return math::Rng(config.seed).fork(0xe7a1);
}

}  // namespace soteria::bench
