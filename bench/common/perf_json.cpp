#include "common/perf_json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "obs/trace.h"

namespace soteria::bench {

namespace {

void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_number(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  std::ostringstream tmp;
  tmp.precision(9);
  tmp << v;
  out << tmp.str();
}

}  // namespace

bool update_perf_json(const std::string& path, const std::string& section,
                      const std::map<std::string, double>& values) {
  // Existing sections survive; `section` is replaced wholesale so keys
  // from an older sweep shape can't linger next to the new ones.
  std::map<std::string, std::map<std::string, double>> document;
  {
    std::ifstream in(path);
    if (in) {
      std::stringstream buffer;
      buffer << in.rdbuf();
      try {
        const auto parsed = obs::json::parse(buffer.str());
        for (const auto& [name, body] : parsed.as_object()) {
          for (const auto& [key, value] : body.as_object()) {
            if (value.type() == obs::json::Value::Type::kNumber) {
              document[name][key] = value.as_number();
            }
          }
        }
      } catch (const std::runtime_error&) {
        document.clear();  // malformed: rebuild from scratch
      }
    }
  }
  document[section] = values;

  std::ofstream out(path);
  if (!out) return false;
  out << "{\n";
  bool first_section = true;
  for (const auto& [name, body] : document) {
    if (!first_section) out << ",\n";
    first_section = false;
    out << "  ";
    write_escaped(out, name);
    out << ": {\n";
    bool first_key = true;
    for (const auto& [key, value] : body) {
      if (!first_key) out << ",\n";
      first_key = false;
      out << "    ";
      write_escaped(out, key);
      out << ": ";
      write_number(out, value);
    }
    out << "\n  }";
  }
  out << "\n}\n";
  return out.good();
}

std::map<std::string, double> stage_means_ms(const obs::Snapshot& snapshot) {
  std::map<std::string, double> means;
  for (const auto& [name, histogram] : snapshot.histograms) {
    if (!name.starts_with(obs::kTimePrefix) || histogram.count == 0) {
      continue;
    }
    means[name.substr(obs::kTimePrefix.size())] = histogram.mean() * 1e3;
  }
  return means;
}

}  // namespace soteria::bench
