// Regenerates Table VIII: what the classifier says about the AEs the
// detector failed to flag, per (target class, size). The paper's
// finding: misses concentrate on Large targets and are mostly
// classified Benign.
#include <cstdio>

#include "common/evaluation.h"
#include "eval/table.h"

int main() {
  using namespace soteria;
  auto experiment = bench::prepare_experiment();
  auto rng = bench::evaluation_rng(experiment.config);
  const auto aes = bench::evaluate_adversarial(experiment, rng);

  eval::Table table({"Class", "Size", "# Missed", "Benign", "Gafgyt",
                     "Mirai", "Tsunami"});
  std::size_t total_missed = 0;
  std::size_t classified_benign = 0;
  for (auto family : dataset::all_families()) {
    for (std::size_t s = 0; s < dataset::kTargetSizeCount; ++s) {
      const auto size = static_cast<dataset::TargetSize>(s);
      std::size_t missed = 0;
      std::size_t by_class[dataset::kFamilyCount] = {};
      for (const auto& ae : aes) {
        if (ae.target != family || ae.size != size || ae.flagged) continue;
        ++missed;
        ++by_class[dataset::family_index(ae.voted)];
      }
      total_missed += missed;
      classified_benign += by_class[0];
      table.add_row({dataset::family_name(family),
                     dataset::target_size_name(size), std::to_string(missed),
                     std::to_string(by_class[0]), std::to_string(by_class[1]),
                     std::to_string(by_class[2]),
                     std::to_string(by_class[3])});
    }
  }
  std::printf("%s\n",
              table
                  .render("Table VIII: classifier verdicts on AEs missed "
                          "by the detector")
                  .c_str());
  if (total_missed > 0) {
    std::printf("missed AEs classified Benign: %zu / %zu (%.1f%%)\n",
                classified_benign, total_missed,
                100.0 * static_cast<double>(classified_benign) /
                    static_cast<double>(total_missed));
  }
  std::printf("paper: 76.1%% of missed AEs were classified Benign; misses "
              "concentrate on Large-size targets\n");
  return 0;
}
