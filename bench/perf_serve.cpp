// perf_serve — throughput / latency sweep of the async AnalysisService
// across worker counts and queue depths. For each (threads, depth)
// combination the full tiny test corpus is submitted several times
// through the bounded queue (yield-retry on backpressure, exactly what
// a well-behaved client does) and we report:
//
//   * throughput_rps       — completed requests per wall-clock second
//   * request_mean_ms      — mean inference latency (t/serve.request)
//   * queue_wait_mean_ms   — mean time a request sat queued
//
// Results go to stdout, bench_results/perf_serve.txt, and the
// "perf_serve" section of the repo-root BENCH_perf.json (read-merge-
// write, other sections preserved). Scale/seed follow the other
// benches' SOTERIA_SCALE / SOTERIA_SEED env vars.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/perf_json.h"
#include "dataset/generator.h"
#include "obs/metrics.h"
#include "serve/service.h"
#include "soteria/presets.h"
#include "soteria/system.h"

namespace soteria {
namespace {

struct ComboResult {
  std::size_t threads = 0;
  std::size_t depth = 0;
  std::size_t requests = 0;
  double throughput_rps = 0.0;
  double request_mean_ms = 0.0;
  double queue_wait_mean_ms = 0.0;
};

ComboResult run_combo(
    const std::shared_ptr<const core::SoteriaSystem>& model,
    const std::vector<cfg::Cfg>& cfgs, std::size_t threads,
    std::size_t depth, std::size_t repetitions) {
  obs::registry().reset();
  obs::set_enabled(true);

  serve::ServiceConfig config;
  config.queue_depth = depth;
  config.num_threads = threads;
  config.seed = 17;
  serve::AnalysisService service(model, config);

  std::vector<std::future<core::Verdict>> verdicts;
  verdicts.reserve(cfgs.size() * repetitions);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    for (const auto& cfg : cfgs) {
      for (;;) {
        auto ticket = service.submit(cfg);
        if (ticket.accepted()) {
          verdicts.push_back(std::move(ticket.verdict));
          break;
        }
        // Backpressure: the queue is at capacity; yield until a worker
        // frees a slot.
        std::this_thread::yield();
      }
    }
  }
  for (auto& verdict : verdicts) (void)verdict.get();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  service.shutdown(serve::ShutdownPolicy::kDrain);

  const auto snapshot = obs::registry().snapshot();
  obs::set_enabled(false);

  ComboResult result;
  result.threads = threads;
  result.depth = depth;
  result.requests = verdicts.size();
  result.throughput_rps =
      static_cast<double>(verdicts.size()) / elapsed.count();
  if (const auto it = snapshot.histograms.find("t/serve.request");
      it != snapshot.histograms.end()) {
    result.request_mean_ms = it->second.mean();  // span timings are ms
  }
  if (const auto it = snapshot.histograms.find("serve.queue.wait");
      it != snapshot.histograms.end()) {
    result.queue_wait_mean_ms = it->second.mean() * 1000.0;  // seconds
  }
  return result;
}

int run() {
  const char* scale_env = std::getenv("SOTERIA_SCALE");
  const char* seed_env = std::getenv("SOTERIA_SEED");
  const double scale = scale_env ? std::strtod(scale_env, nullptr) : 0.008;
  const std::uint64_t seed =
      seed_env ? std::strtoull(seed_env, nullptr, 10) : 42;

  dataset::DatasetConfig data_config;
  data_config.scale = scale;
  math::Rng rng(seed);
  const auto data = dataset::generate_dataset(data_config, rng);
  const auto config = core::tiny_config();
  auto model = std::make_shared<const core::SoteriaSystem>(
      core::SoteriaSystem::train(data.train, config));

  std::vector<cfg::Cfg> cfgs;
  cfgs.reserve(data.test.size());
  for (const auto& sample : data.test) cfgs.push_back(sample.cfg);
  std::printf("perf_serve: %zu test cfgs, scale %.3f, seed %llu\n",
              cfgs.size(), scale,
              static_cast<unsigned long long>(seed));

  std::string report =
      "threads  depth  requests  throughput_rps  request_mean_ms  "
      "queue_wait_mean_ms\n";
  std::map<std::string, double> json_values;
  for (const std::size_t threads : {1U, 2U, 4U}) {
    for (const std::size_t depth : {8U, 64U, 256U}) {
      const auto result = run_combo(model, cfgs, threads, depth, 3);
      char line[160];
      std::snprintf(line, sizeof(line),
                    "%7zu  %5zu  %8zu  %14.1f  %15.3f  %18.3f\n",
                    result.threads, result.depth, result.requests,
                    result.throughput_rps, result.request_mean_ms,
                    result.queue_wait_mean_ms);
      report += line;
      std::printf("%s", line);

      char key_buffer[48];
      std::snprintf(key_buffer, sizeof(key_buffer), "t%zu_q%zu_", threads,
                    depth);
      const std::string key(key_buffer);
      json_values[key + "throughput_rps"] = result.throughput_rps;
      json_values[key + "request_mean_ms"] = result.request_mean_ms;
      json_values[key + "queue_wait_mean_ms"] = result.queue_wait_mean_ms;
    }
  }

  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  std::ofstream out("bench_results/perf_serve.txt");
  if (out) {
    out << report;
    std::printf("sweep written to bench_results/perf_serve.txt\n");
  }
  if (bench::update_perf_json("BENCH_perf.json", "perf_serve",
                              json_values)) {
    std::printf("sweep recorded in BENCH_perf.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace soteria

int main() { return soteria::run(); }
