// perf_serve — throughput / latency sweep of the sharded, micro-batched
// serving stack across worker counts, shard counts, and micro-batch
// bounds. Each combination replays the tiny test corpus several times
// through a fresh ShardedService (yield-retry on backpressure, exactly
// what a well-behaved client does) over one shared persistent feature
// store: request ids restart with each fresh service, so every timed
// repetition replays the same (content, fingerprint, walk-seed) keys
// and the store serves features warm — the steady-state a long-lived
// service converges to. One untimed cold repetition populates the
// store first.
//
// Reported per combination (keys `w{W}_s{S}_b{B}_*`):
//
//   * throughput_rps    — completed requests per wall-clock second
//   * e2e_p50_ms        — median submit-to-verdict latency
//   * e2e_p99_ms        — tail submit-to-verdict latency
//   * queue_wait_p50_ms — median time a request sat queued
//   * queue_wait_p99_ms — tail time a request sat queued
//
// plus `hardware_threads`, because worker scaling is bounded by the
// physical cores the host actually grants: on a single-core container
// extra workers only interleave, so read the worker sweep relative to
// that ceiling (the earlier flat t1/t2/t4 curve at ~0.85 ms/request
// was exactly this — extraction-bound on one core, not a queue
// convoy).
//
// Results go to stdout, bench_results/perf_serve.txt, and the
// "perf_serve" section of the repo-root BENCH_perf.json (the section is
// replaced wholesale, other sections preserved). Scale/seed follow the
// other benches' SOTERIA_SCALE / SOTERIA_SEED env vars.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/perf_json.h"
#include "dataset/generator.h"
#include "obs/metrics.h"
#include "serve/sharded_service.h"
#include "soteria/presets.h"
#include "soteria/system.h"
#include "store/feature_store.h"

namespace soteria {
namespace {

struct Combo {
  std::size_t workers;
  std::size_t shards;
  std::size_t batch;
};

struct ComboResult {
  Combo combo{};
  std::size_t requests = 0;
  double throughput_rps = 0.0;
  double e2e_p50_ms = 0.0;
  double e2e_p99_ms = 0.0;
  double queue_wait_p50_ms = 0.0;
  double queue_wait_p99_ms = 0.0;
};

/// One pass of the corpus through a fresh service. Returns wall-clock
/// seconds for the pass (submission through last verdict).
double replay_once(const std::shared_ptr<const core::SoteriaSystem>& model,
                   const std::vector<std::shared_ptr<const cfg::Cfg>>& corpus,
                   const std::shared_ptr<store::FeatureStore>& store,
                   const Combo& combo) {
  serve::ShardedServiceConfig config;
  config.num_shards = combo.shards;
  config.seed = 17;
  config.shard.num_threads = combo.workers;
  config.shard.max_batch = combo.batch;
  config.shard.queue_depth = 256;
  config.shard.feature_store = store;
  serve::ShardedService service(model, config);

  std::vector<std::future<core::Verdict>> verdicts;
  verdicts.reserve(corpus.size());
  const auto start = std::chrono::steady_clock::now();
  for (const auto& cfg : corpus) {
    for (;;) {
      auto ticket = service.submit(cfg);
      if (ticket.accepted()) {
        verdicts.push_back(std::move(ticket.verdict));
        break;
      }
      // Backpressure: the target shard's queue is at capacity; yield
      // until a worker frees a slot.
      std::this_thread::yield();
    }
  }
  for (auto& verdict : verdicts) (void)verdict.get();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  service.shutdown(serve::ShutdownPolicy::kDrain);
  return elapsed.count();
}

ComboResult run_combo(
    const std::shared_ptr<const core::SoteriaSystem>& model,
    const std::vector<std::shared_ptr<const cfg::Cfg>>& corpus,
    const std::shared_ptr<store::FeatureStore>& store, const Combo& combo,
    std::size_t repetitions) {
  // Cold pass outside the clock and the metrics window: populates the
  // feature store so the timed passes measure the warm steady state.
  obs::set_enabled(false);
  (void)replay_once(model, corpus, store, combo);

  obs::registry().reset();
  obs::set_enabled(true);
  double total_seconds = 0.0;
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    // A fresh service restarts request ids at 0, so this pass replays
    // the exact walk-seed keys the cold pass wrote.
    total_seconds += replay_once(model, corpus, store, combo);
  }
  const auto snapshot = obs::registry().snapshot();
  obs::set_enabled(false);
  obs::registry().reset();

  ComboResult result;
  result.combo = combo;
  result.requests = corpus.size() * repetitions;
  result.throughput_rps =
      static_cast<double>(result.requests) / total_seconds;
  if (const auto it = snapshot.histograms.find("serve.request.e2e");
      it != snapshot.histograms.end()) {
    result.e2e_p50_ms = it->second.quantile(0.50) * 1e3;
    result.e2e_p99_ms = it->second.quantile(0.99) * 1e3;
  }
  if (const auto it = snapshot.histograms.find("serve.queue.wait");
      it != snapshot.histograms.end()) {
    result.queue_wait_p50_ms = it->second.quantile(0.50) * 1e3;
    result.queue_wait_p99_ms = it->second.quantile(0.99) * 1e3;
  }
  return result;
}

int run() {
  const char* scale_env = std::getenv("SOTERIA_SCALE");
  const char* seed_env = std::getenv("SOTERIA_SEED");
  const double scale = scale_env ? std::strtod(scale_env, nullptr) : 0.008;
  const std::uint64_t seed =
      seed_env ? std::strtoull(seed_env, nullptr, 10) : 42;

  dataset::DatasetConfig data_config;
  data_config.scale = scale;
  math::Rng rng(seed);
  const auto data = dataset::generate_dataset(data_config, rng);
  const auto config = core::tiny_config();
  auto model = std::make_shared<const core::SoteriaSystem>(
      core::SoteriaSystem::train(data.train, config));

  std::vector<std::shared_ptr<const cfg::Cfg>> corpus;
  corpus.reserve(data.test.size());
  for (const auto& sample : data.test) {
    corpus.push_back(std::make_shared<const cfg::Cfg>(sample.cfg));
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf(
      "perf_serve: %zu test cfgs, scale %.3f, seed %llu, "
      "%u hardware thread(s)\n",
      corpus.size(), scale, static_cast<unsigned long long>(seed), hardware);

  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  const std::string store_dir = "bench_results/perf_serve_store";
  std::filesystem::remove_all(store_dir, ec);  // cold start every run
  auto store = std::make_shared<store::FeatureStore>(
      store::StoreConfig{store_dir});

  // Worker sweep at fixed shards/batch, shard sweep at fixed workers,
  // batch sweep at fixed workers/shards. (4,1,16) anchors all three.
  const std::vector<Combo> combos = {
      {1, 1, 16}, {2, 1, 16}, {4, 1, 16}, {8, 1, 16},  // workers
      {2, 2, 16}, {2, 4, 16},                          // shards (with 2,1,16)
      {4, 1, 1},  {4, 1, 4},                           // batch (with 4,1,16)
  };

  std::string report =
      "workers  shards  batch  requests  throughput_rps  e2e_p50_ms  "
      "e2e_p99_ms  qwait_p50_ms  qwait_p99_ms\n";
  std::map<std::string, double> json_values;
  json_values["hardware_threads"] = static_cast<double>(hardware);
  for (const auto& combo : combos) {
    const auto result = run_combo(model, corpus, store, combo, 3);
    char line[192];
    std::snprintf(line, sizeof(line),
                  "%7zu  %6zu  %5zu  %8zu  %14.1f  %10.3f  %10.3f  "
                  "%12.3f  %12.3f\n",
                  combo.workers, combo.shards, combo.batch, result.requests,
                  result.throughput_rps, result.e2e_p50_ms,
                  result.e2e_p99_ms, result.queue_wait_p50_ms,
                  result.queue_wait_p99_ms);
    report += line;
    std::printf("%s", line);

    char key_buffer[48];
    std::snprintf(key_buffer, sizeof(key_buffer), "w%zu_s%zu_b%zu_",
                  combo.workers, combo.shards, combo.batch);
    const std::string key(key_buffer);
    json_values[key + "throughput_rps"] = result.throughput_rps;
    json_values[key + "e2e_p50_ms"] = result.e2e_p50_ms;
    json_values[key + "e2e_p99_ms"] = result.e2e_p99_ms;
    json_values[key + "queue_wait_p50_ms"] = result.queue_wait_p50_ms;
    json_values[key + "queue_wait_p99_ms"] = result.queue_wait_p99_ms;
  }

  std::ofstream out("bench_results/perf_serve.txt");
  if (out) {
    out << report;
    std::printf("sweep written to bench_results/perf_serve.txt\n");
  }
  if (bench::update_perf_json("BENCH_perf.json", "perf_serve",
                              json_values)) {
    std::printf("sweep recorded in BENCH_perf.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace soteria

int main() { return soteria::run(); }
