// Micro-benchmarks for the graph substrate: BFS, centrality, labeling,
// whole-graph properties, and CFG extraction across graph sizes.
//
// After the google-benchmark suites, main() runs the centrality
// scaling sweep on firmware-shaped CFGs (the workload the sampled
// approximation exists for): the exact fused parallel Brandes at
// n in {1000, 10000} x threads {1,2,4,8} plus a t=1 anchor at
// n=50,000, and the sampled-pivot approximate path at
// n in {10000, 50000} x threads {1,2,4,8}. Every cell re-checks the
// determinism contracts before its timing is trusted — parallel runs
// bit-identical to t=1, and the approximate path bit-stable under a
// repeated same-seed run — and the approximate path must clear a
// >=5x speedup floor over exact at n=10,000. Any violation makes the
// process exit non-zero. The table goes to stdout and
// bench_results/perf_centrality.txt; cell timings land in the
// repo-root BENCH_perf.json (section "perf_graph") under distinct
// "exact.*" and "approx.*" keys so the two paths never alias.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cfg/extractor.h"
#include "cfg/gea.h"
#include "cfg/labeling.h"
#include "common/perf_json.h"
#include "dataset/family_profiles.h"
#include "graph/centrality.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "graph/traversal.h"
#include "isa/codegen.h"

namespace {

using namespace soteria;

graph::DiGraph make_graph(std::size_t n) {
  math::Rng rng(42);
  return graph::random_connected_dag_plus(n, 4.0 / static_cast<double>(n),
                                          rng);
}

void BM_BfsDistances(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::bfs_distances(g, 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BfsDistances)->Arg(32)->Arg(128)->Arg(512)->Complexity();

void BM_BetweennessCentrality(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::betweenness_centrality(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BetweennessCentrality)->Arg(32)->Arg(128)->Arg(512)
    ->Complexity();

void BM_ClosenessCentrality(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::closeness_centrality(g));
  }
}
BENCHMARK(BM_ClosenessCentrality)->Arg(32)->Arg(128)->Arg(512);

void BM_GraphProperties(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::graph_properties(g));
  }
}
BENCHMARK(BM_GraphProperties)->Arg(32)->Arg(128);

void BM_LabelNodes(benchmark::State& state) {
  const cfg::Cfg cfg(make_graph(static_cast<std::size_t>(state.range(0))),
                     0);
  const auto method = state.range(1) == 0 ? cfg::LabelingMethod::kDensity
                                          : cfg::LabelingMethod::kLevel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfg::label_nodes(cfg, method));
  }
}
BENCHMARK(BM_LabelNodes)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1});

void BM_CfgExtraction(benchmark::State& state) {
  math::Rng rng(7);
  const auto binary =
      isa::generate_binary(dataset::profile_for(dataset::Family::kMirai),
                           rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfg::extract(binary));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * binary.size()));
}
BENCHMARK(BM_CfgExtraction);

void BM_GeaCombine(benchmark::State& state) {
  math::Rng rng(8);
  const cfg::Cfg a(make_graph(128), 0);
  const cfg::Cfg b(make_graph(64), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfg::gea_combine(a, b));
  }
}
BENCHMARK(BM_GeaCombine);

/// Firmware-shaped sweep graph (fixed seed: every cell and every run
/// times the identical graph).
graph::DiGraph make_firmware(std::size_t n) {
  math::Rng rng(90210);
  return graph::firmware_like_cfg(n, rng);
}

/// Exact-vs-approximate centrality scaling sweep; see the file header
/// for the cell grid and the contracts each cell re-checks. Returns
/// false if any determinism contract or the n=10,000 speedup floor is
/// violated.
[[nodiscard]] bool run_centrality_sweep() {
  const std::vector<std::size_t> all_threads{1, 2, 4, 8};
  constexpr double kMinSpeedupAt10k = 5.0;

  std::ostringstream table;
  table << "== centrality scaling, firmware-shaped CFGs"
        << " (ms per full graph) ==\n"
        << "  mode     nodes      edges  pivots        t=1        t=2"
        << "        t=4        t=8\n";
  std::map<std::string, double> json_values;
  bool ok = true;

  const auto time_once = [](const graph::DiGraph& g,
                            const graph::CentralityOptions& options,
                            graph::CentralityScores& scores) {
    const auto start = std::chrono::steady_clock::now();
    scores = graph::centrality_scores(g, options);
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  // Runs one (mode, n) row over `threads`, re-checking the thread
  // bit-identity contract on every cell and (in approximate mode) the
  // same-seed bit-stability contract once per row. Returns the t=1
  // cell time.
  const auto sweep_row = [&](const graph::DiGraph& g, std::size_t n,
                             bool approximate,
                             const std::vector<std::size_t>& threads) {
    const std::string mode = approximate ? "approx" : "exact";
    const std::string prefix = mode + ".n" + std::to_string(n);
    // Fewer repetitions on the big graphs; the per-run time dwarfs
    // timer noise there.
    const int reps = n >= 10000 ? 1 : (n >= 1000 ? 3 : 20);

    graph::CentralityScores reference;
    std::vector<double> cell_ms;
    for (const std::size_t t : threads) {
      graph::CentralityOptions options;
      options.num_threads = t;
      options.approximate = approximate;
      graph::CentralityScores scores;
      double best_ms = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        const double elapsed = time_once(g, options, scores);
        if (rep == 0 || elapsed < best_ms) best_ms = elapsed;
      }
      if (t == threads.front()) {
        reference = scores;
      } else if (scores.betweenness != reference.betweenness ||
                 scores.closeness != reference.closeness) {
        ok = false;
        std::printf("DETERMINISM VIOLATION: %s n=%zu threads=%zu\n",
                    mode.c_str(), n, t);
      }
      cell_ms.push_back(best_ms);
      json_values[prefix + ".t" + std::to_string(t) + ".ms"] = best_ms;
    }
    if (approximate) {
      // Same seed, fresh run: the sampled path must reproduce itself
      // bit-for-bit (fixed pivot draw, integer-exact accumulators).
      graph::CentralityOptions options;
      options.num_threads = threads.front();
      options.approximate = true;
      graph::CentralityScores again;
      (void)time_once(g, options, again);
      if (again.betweenness != reference.betweenness ||
          again.closeness != reference.closeness) {
        ok = false;
        std::printf("SEED STABILITY VIOLATION: approx n=%zu\n", n);
      }
    }

    const std::size_t pivots =
        approximate
            ? graph::resolved_pivot_count(n, graph::ApproxCentralityOptions{})
            : 0;
    if (approximate) {
      json_values[prefix + ".pivots"] = static_cast<double>(pivots);
    }
    char row[200];
    std::string cells;
    for (std::size_t i = 0; i < threads.size(); ++i) {
      std::snprintf(row, sizeof(row), " %10.3f", cell_ms[i]);
      cells += row;
    }
    for (std::size_t i = threads.size(); i < all_threads.size(); ++i) {
      cells += "          -";
    }
    std::snprintf(row, sizeof(row), "  %-6s %7zu %10zu %7zu%s\n",
                  mode.c_str(), n, g.edge_count(), pivots, cells.c_str());
    table << row;
    return cell_ms.front();
  };

  {
    const auto g = make_firmware(1000);
    (void)sweep_row(g, 1000, /*approximate=*/false, all_threads);
  }
  double exact_10k_ms = 0.0;
  double approx_10k_ms = 0.0;
  {
    const auto g = make_firmware(10000);
    exact_10k_ms = sweep_row(g, 10000, /*approximate=*/false, all_threads);
    approx_10k_ms = sweep_row(g, 10000, /*approximate=*/true, all_threads);
  }
  {
    // Exact at n=50,000 is the anchor the approximation is measured
    // against; one serial run keeps the sweep's wall clock sane.
    const auto g = make_firmware(50000);
    (void)sweep_row(g, 50000, /*approximate=*/false, {1});
    (void)sweep_row(g, 50000, /*approximate=*/true, all_threads);
  }

  const double speedup =
      approx_10k_ms > 0.0 ? exact_10k_ms / approx_10k_ms : 0.0;
  json_values["approx.n10000.speedup_over_exact_t1"] = speedup;
  char line[120];
  std::snprintf(line, sizeof(line),
                "  approx speedup over exact at n=10000 (t=1): %.2fx"
                " (floor %.1fx)\n",
                speedup, kMinSpeedupAt10k);
  table << line;
  if (speedup < kMinSpeedupAt10k) {
    ok = false;
    std::printf("SPEEDUP FLOOR VIOLATION: %.2fx < %.1fx at n=10000\n",
                speedup, kMinSpeedupAt10k);
  }
  table << (ok ? "  all determinism contracts held\n"
               : "  CONTRACT VIOLATIONS DETECTED (see stdout)\n");

  const std::string report = table.str();
  std::printf("\n%s", report.c_str());

  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  std::ofstream out("bench_results/perf_centrality.txt");
  if (out) {
    out << report;
    std::printf(
        "centrality sweep written to bench_results/perf_centrality.txt\n");
  } else {
    std::printf("bench_results/ not writable; sweep not persisted\n");
  }
  if (bench::update_perf_json("BENCH_perf.json", "perf_graph",
                              json_values)) {
    std::printf("centrality sweep recorded in BENCH_perf.json\n");
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_centrality_sweep() ? 0 : 1;
}
