// Micro-benchmarks for the graph substrate: BFS, centrality, labeling,
// whole-graph properties, and CFG extraction across graph sizes.
#include <benchmark/benchmark.h>

#include "cfg/extractor.h"
#include "cfg/gea.h"
#include "cfg/labeling.h"
#include "dataset/family_profiles.h"
#include "graph/centrality.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "graph/traversal.h"
#include "isa/codegen.h"

namespace {

using namespace soteria;

graph::DiGraph make_graph(std::size_t n) {
  math::Rng rng(42);
  return graph::random_connected_dag_plus(n, 4.0 / static_cast<double>(n),
                                          rng);
}

void BM_BfsDistances(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::bfs_distances(g, 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BfsDistances)->Arg(32)->Arg(128)->Arg(512)->Complexity();

void BM_BetweennessCentrality(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::betweenness_centrality(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BetweennessCentrality)->Arg(32)->Arg(128)->Arg(512)
    ->Complexity();

void BM_ClosenessCentrality(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::closeness_centrality(g));
  }
}
BENCHMARK(BM_ClosenessCentrality)->Arg(32)->Arg(128)->Arg(512);

void BM_GraphProperties(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::graph_properties(g));
  }
}
BENCHMARK(BM_GraphProperties)->Arg(32)->Arg(128);

void BM_LabelNodes(benchmark::State& state) {
  const cfg::Cfg cfg(make_graph(static_cast<std::size_t>(state.range(0))),
                     0);
  const auto method = state.range(1) == 0 ? cfg::LabelingMethod::kDensity
                                          : cfg::LabelingMethod::kLevel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfg::label_nodes(cfg, method));
  }
}
BENCHMARK(BM_LabelNodes)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1});

void BM_CfgExtraction(benchmark::State& state) {
  math::Rng rng(7);
  const auto binary =
      isa::generate_binary(dataset::profile_for(dataset::Family::kMirai),
                           rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfg::extract(binary));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * binary.size()));
}
BENCHMARK(BM_CfgExtraction);

void BM_GeaCombine(benchmark::State& state) {
  math::Rng rng(8);
  const cfg::Cfg a(make_graph(128), 0);
  const cfg::Cfg b(make_graph(64), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfg::gea_combine(a, b));
  }
}
BENCHMARK(BM_GeaCombine);

}  // namespace

BENCHMARK_MAIN();
