// Micro-benchmarks for the graph substrate: BFS, centrality, labeling,
// whole-graph properties, and CFG extraction across graph sizes.
//
// After the google-benchmark suites, main() runs the centrality
// scaling sweep: the fused single-pass implementation across graph
// sizes (~1e2..1e4 nodes) and thread counts (1/2/4/8), verifying the
// thread-count determinism contract on every cell, printing a table to
// stdout and bench_results/perf_centrality.txt, and recording the cell
// timings in the repo-root BENCH_perf.json (section "perf_graph").
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cfg/extractor.h"
#include "cfg/gea.h"
#include "cfg/labeling.h"
#include "common/perf_json.h"
#include "dataset/family_profiles.h"
#include "graph/centrality.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "graph/traversal.h"
#include "isa/codegen.h"

namespace {

using namespace soteria;

graph::DiGraph make_graph(std::size_t n) {
  math::Rng rng(42);
  return graph::random_connected_dag_plus(n, 4.0 / static_cast<double>(n),
                                          rng);
}

void BM_BfsDistances(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::bfs_distances(g, 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BfsDistances)->Arg(32)->Arg(128)->Arg(512)->Complexity();

void BM_BetweennessCentrality(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::betweenness_centrality(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BetweennessCentrality)->Arg(32)->Arg(128)->Arg(512)
    ->Complexity();

void BM_ClosenessCentrality(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::closeness_centrality(g));
  }
}
BENCHMARK(BM_ClosenessCentrality)->Arg(32)->Arg(128)->Arg(512);

void BM_GraphProperties(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::graph_properties(g));
  }
}
BENCHMARK(BM_GraphProperties)->Arg(32)->Arg(128);

void BM_LabelNodes(benchmark::State& state) {
  const cfg::Cfg cfg(make_graph(static_cast<std::size_t>(state.range(0))),
                     0);
  const auto method = state.range(1) == 0 ? cfg::LabelingMethod::kDensity
                                          : cfg::LabelingMethod::kLevel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfg::label_nodes(cfg, method));
  }
}
BENCHMARK(BM_LabelNodes)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1});

void BM_CfgExtraction(benchmark::State& state) {
  math::Rng rng(7);
  const auto binary =
      isa::generate_binary(dataset::profile_for(dataset::Family::kMirai),
                           rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfg::extract(binary));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * binary.size()));
}
BENCHMARK(BM_CfgExtraction);

void BM_GeaCombine(benchmark::State& state) {
  math::Rng rng(8);
  const cfg::Cfg a(make_graph(128), 0);
  const cfg::Cfg b(make_graph(64), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfg::gea_combine(a, b));
  }
}
BENCHMARK(BM_GeaCombine);

/// Fused-centrality scaling sweep. Each (nodes, threads) cell times
/// `centrality_scores` on the same fixed graph; the 1-thread result is
/// the determinism reference every other thread count must match
/// bit-for-bit before its timing is trusted.
void run_centrality_sweep() {
  const std::vector<std::size_t> node_counts{100, 1000, 10000};
  const std::vector<std::size_t> thread_counts{1, 2, 4, 8};

  std::ostringstream table;
  table << "== fused centrality scaling (ms per full graph) ==\n";
  table << "  nodes      edges        t=1        t=2        t=4        t=8"
        << "    speedup(t=8)\n";

  std::map<std::string, double> json_values;
  bool all_deterministic = true;

  for (std::size_t n : node_counts) {
    const auto g = make_graph(n);
    // Fewer repetitions on the big graphs; the per-run time dwarfs
    // timer noise there.
    const int reps = n >= 10000 ? 1 : (n >= 1000 ? 3 : 20);

    graph::CentralityScores reference;
    std::vector<double> cell_ms;
    for (std::size_t threads : thread_counts) {
      (void)graph::centrality_scores(g, threads);  // warm-up
      double best_ms = 0.0;
      graph::CentralityScores scores;
      for (int rep = 0; rep < reps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        scores = graph::centrality_scores(g, threads);
        const auto elapsed = std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start).count();
        if (rep == 0 || elapsed < best_ms) best_ms = elapsed;
      }
      if (threads == 1) {
        reference = scores;
      } else if (scores.betweenness != reference.betweenness ||
                 scores.closeness != reference.closeness) {
        all_deterministic = false;
        std::printf("DETERMINISM VIOLATION: n=%zu threads=%zu\n", n,
                    threads);
      }
      cell_ms.push_back(best_ms);
      json_values["centrality.n" + std::to_string(n) + ".t" +
                  std::to_string(threads) + ".ms"] = best_ms;
    }

    char row[160];
    std::snprintf(row, sizeof(row),
                  "  %6zu %10zu %10.3f %10.3f %10.3f %10.3f %10.2fx\n", n,
                  g.edge_count(), cell_ms[0], cell_ms[1], cell_ms[2],
                  cell_ms[3],
                  cell_ms[3] > 0.0 ? cell_ms[0] / cell_ms[3] : 0.0);
    table << row;
  }
  table << (all_deterministic
                ? "  all thread counts bit-identical to t=1\n"
                : "  DETERMINISM VIOLATIONS DETECTED (see above)\n");

  const std::string report = table.str();
  std::printf("\n%s", report.c_str());

  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  std::ofstream out("bench_results/perf_centrality.txt");
  if (out) {
    out << report;
    std::printf(
        "centrality sweep written to bench_results/perf_centrality.txt\n");
  } else {
    std::printf("bench_results/ not writable; sweep not persisted\n");
  }
  if (bench::update_perf_json("BENCH_perf.json", "perf_graph",
                              json_values)) {
    std::printf("centrality sweep recorded in BENCH_perf.json\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_centrality_sweep();
  return 0;
}
