// perf_infer — before/after sweep of the compiled inference hot path.
//
// Two measurements, both against the preserved reference code:
//
//   * n-gram stage: per-walk TF-IDF production via the original
//     unordered_map counting (count_grams_reference + map tfidf_into)
//     versus the fused count_into_vocab -> dense tfidf_into path the
//     frozen model compiles (DirectGramTable lookup), on identical
//     walks. Outputs are checked bitwise before timing.
//   * end-to-end: SoteriaSystem::analyze_batch through the interpreted
//     layer objects versus the frozen fused model, at 1/2/4 threads,
//     with exact verdict identity asserted per thread count.
//
// The sweep fails (non-zero exit) if any identity check fails, if the
// n-gram fast path is under 3x, or if the frozen model is under 2x
// end-to-end at one thread. Results go to stdout,
// bench_results/perf_infer.txt, and the "perf_infer" section of the
// repo-root BENCH_perf.json (read-merge-write, other sections
// preserved). Scale/seed follow SOTERIA_SCALE / SOTERIA_SEED.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "cfg/labeling.h"
#include "common/perf_json.h"
#include "dataset/generator.h"
#include "features/ngram.h"
#include "features/random_walk.h"
#include "features/vocabulary.h"
#include "math/rng.h"
#include "soteria/frozen.h"
#include "soteria/presets.h"
#include "soteria/system.h"

namespace soteria {
namespace {

constexpr double kRequiredNgramSpeedup = 3.0;
constexpr double kRequiredFrozenSpeedup = 2.0;

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double, std::milli> delta =
      std::chrono::steady_clock::now() - start;
  return delta.count();
}

bool verdicts_identical(const std::vector<core::Verdict>& a,
                        const std::vector<core::Verdict>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].adversarial != b[i].adversarial ||
        a[i].reconstruction_error != b[i].reconstruction_error ||
        a[i].predicted != b[i].predicted) {
      return false;
    }
  }
  return true;
}

struct NgramResult {
  double reference_ms = 0.0;
  double flat_ms = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

/// Times per-walk TF-IDF production (counting + weighting) over the
/// same walk set through the map-based reference and the fused dense
/// path. The walks come from real labeled CFGs so gram distributions
/// match what inference sees.
NgramResult run_ngram_stage(const core::SoteriaSystem& model,
                            const std::vector<cfg::Cfg>& cfgs,
                            std::uint64_t seed) {
  const auto& pipeline = model.pipeline();
  const auto& config = pipeline.config();

  struct WalkSet {
    const features::Vocabulary* vocab;
    features::DirectGramTable table;
    std::vector<std::vector<cfg::Label>> walks;
  };
  WalkSet sets[2] = {{&pipeline.dbl_vocabulary(), {}, {}},
                     {&pipeline.lbl_vocabulary(), {}, {}}};
  // The after-side resolves keys through the same freeze-time direct
  // table the frozen model compiles, not the vocabulary's compact
  // perfect hash.
  for (auto& set : sets) {
    set.table = features::DirectGramTable::build(set.vocab->grams());
  }

  math::Rng walk_rng(seed + 17);
  for (const auto& cfg : cfgs) {
    const auto labelings = cfg::label_both(cfg, config.labeling);
    auto dbl = features::labeled_walks(cfg, labelings.dbl, config.walk,
                                       walk_rng);
    auto lbl = features::labeled_walks(cfg, labelings.lbl, config.walk,
                                       walk_rng);
    for (auto& walk : dbl) sets[0].walks.push_back(std::move(walk));
    for (auto& walk : lbl) sets[1].walks.push_back(std::move(walk));
  }

  // Identity first: both paths must produce the same bytes per walk.
  bool identical = true;
  std::vector<std::uint32_t> dense;
  std::vector<float> out_reference;
  std::vector<float> out_flat;
  for (const auto& set : sets) {
    const std::size_t dim = set.vocab->size();
    dense.assign(dim, 0);
    out_reference.assign(dim, 0.0F);
    out_flat.assign(dim, 0.0F);
    for (const auto& walk : set.walks) {
      features::GramCounts counts;
      features::count_grams_reference(walk, config.gram_sizes, counts);
      set.vocab->tfidf_into(counts, out_reference, config.l2_normalize);

      std::fill(dense.begin(), dense.end(), 0U);
      const std::uint64_t windows = features::count_into_vocab(
          walk, config.gram_sizes, set.table, dense);
      set.vocab->tfidf_into(dense, windows, out_flat, config.l2_normalize);

      if (std::memcmp(out_reference.data(), out_flat.data(),
                      dim * sizeof(float)) != 0) {
        identical = false;
      }
    }
  }

  // Timed loops: several repetitions over all walks; a checksum keeps
  // the work observable.
  constexpr std::size_t kReps = 5;
  double checksum = 0.0;

  const auto reference_start = std::chrono::steady_clock::now();
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    for (const auto& set : sets) {
      out_reference.assign(set.vocab->size(), 0.0F);
      for (const auto& walk : set.walks) {
        features::GramCounts counts;
        features::count_grams_reference(walk, config.gram_sizes, counts);
        set.vocab->tfidf_into(counts, out_reference, config.l2_normalize);
        checksum += out_reference.empty() ? 0.0 : out_reference[0];
      }
    }
  }
  const double reference_ms = elapsed_ms(reference_start);

  const auto flat_start = std::chrono::steady_clock::now();
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    for (const auto& set : sets) {
      dense.assign(set.vocab->size(), 0);
      out_flat.assign(set.vocab->size(), 0.0F);
      for (const auto& walk : set.walks) {
        std::fill(dense.begin(), dense.end(), 0U);
        const std::uint64_t windows = features::count_into_vocab(
            walk, config.gram_sizes, set.table, dense);
        set.vocab->tfidf_into(dense, windows, out_flat,
                              config.l2_normalize);
        checksum += out_flat.empty() ? 0.0 : out_flat[0];
      }
    }
  }
  const double flat_ms = elapsed_ms(flat_start);

  NgramResult result;
  result.reference_ms = reference_ms;
  result.flat_ms = flat_ms;
  result.speedup = flat_ms > 0.0 ? reference_ms / flat_ms : 0.0;
  result.identical = identical && checksum == checksum;  // keep checksum live
  return result;
}

struct EndToEndResult {
  std::size_t threads = 0;
  double interpreted_ms = 0.0;
  double frozen_ms = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

EndToEndResult run_end_to_end(const core::SoteriaSystem& model,
                              const std::vector<cfg::Cfg>& cfgs,
                              std::size_t threads) {
  const math::Rng rng(911);
  constexpr std::size_t kReps = 3;

  core::AnalyzeOptions interpreted_options;
  interpreted_options.num_threads = threads;
  interpreted_options.use_frozen = false;

  core::AnalyzeOptions frozen_options = interpreted_options;
  frozen_options.use_frozen = true;

  EndToEndResult result;
  result.threads = threads;
  result.interpreted_ms = 1e300;
  result.frozen_ms = 1e300;
  result.identical = true;

  std::vector<core::Verdict> interpreted;
  std::vector<core::Verdict> frozen;
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    const auto interpreted_start = std::chrono::steady_clock::now();
    interpreted = model.analyze_batch(cfgs, rng, interpreted_options);
    result.interpreted_ms =
        std::min(result.interpreted_ms, elapsed_ms(interpreted_start));

    const auto frozen_start = std::chrono::steady_clock::now();
    frozen = model.analyze_batch(cfgs, rng, frozen_options);
    result.frozen_ms = std::min(result.frozen_ms, elapsed_ms(frozen_start));

    result.identical =
        result.identical && verdicts_identical(interpreted, frozen);
  }
  result.speedup = result.frozen_ms > 0.0
                       ? result.interpreted_ms / result.frozen_ms
                       : 0.0;
  return result;
}

int run() {
  const char* scale_env = std::getenv("SOTERIA_SCALE");
  const char* seed_env = std::getenv("SOTERIA_SEED");
  const double scale = scale_env ? std::strtod(scale_env, nullptr) : 0.008;
  const std::uint64_t seed =
      seed_env ? std::strtoull(seed_env, nullptr, 10) : 42;

  dataset::DatasetConfig data_config;
  data_config.scale = scale;
  math::Rng rng(seed);
  const auto data = dataset::generate_dataset(data_config, rng);
  const auto config = core::tiny_config();
  auto model = core::SoteriaSystem::train(data.train, config);
  model.freeze();

  std::vector<cfg::Cfg> base;
  base.reserve(data.test.size());
  for (const auto& sample : data.test) base.push_back(sample.cfg);
  std::printf("perf_infer: %zu test cfgs, scale %.3f, seed %llu\n",
              base.size(), scale, static_cast<unsigned long long>(seed));

  std::string report;
  std::map<std::string, double> json_values;

  const auto ngram = run_ngram_stage(model, base, seed);
  char line[200];
  std::snprintf(line, sizeof(line),
                "ngrams   reference %8.1f ms   flat %8.1f ms   %5.1fx%s\n",
                ngram.reference_ms, ngram.flat_ms, ngram.speedup,
                ngram.identical ? "" : "  IDENTITY-VIOLATION");
  report += line;
  std::printf("%s", line);
  json_values["ngrams_reference_ms"] = ngram.reference_ms;
  json_values["ngrams_flat_ms"] = ngram.flat_ms;
  json_values["ngrams_speedup"] = ngram.speedup;

  // Batch corpus: the test set repeated so each timed run is long
  // enough to measure; every index still draws its own walk RNG.
  std::vector<cfg::Cfg> cfgs;
  cfgs.reserve(base.size() * 4);
  for (std::size_t m = 0; m < 4; ++m) {
    cfgs.insert(cfgs.end(), base.begin(), base.end());
  }

  // One untimed interpreted pass warms the shared labeling cache so
  // neither timed path pays the one-off labeling cost.
  {
    core::AnalyzeOptions warm;
    warm.num_threads = 1;
    warm.use_frozen = false;
    (void)model.analyze_batch(cfgs, math::Rng(911), warm);
  }

  bool all_identical = ngram.identical;
  double frozen_speedup_t1 = 0.0;
  for (const std::size_t threads : {1U, 2U, 4U}) {
    const auto e2e = run_end_to_end(model, cfgs, threads);
    all_identical = all_identical && e2e.identical;
    if (threads == 1) frozen_speedup_t1 = e2e.speedup;

    std::snprintf(line, sizeof(line),
                  "batch t%zu interpreted %6.1f ms   frozen %6.1f ms   "
                  "%5.1fx%s\n",
                  e2e.threads, e2e.interpreted_ms, e2e.frozen_ms,
                  e2e.speedup, e2e.identical ? "" : "  IDENTITY-VIOLATION");
    report += line;
    std::printf("%s", line);

    char key[40];
    std::snprintf(key, sizeof(key), "t%zu", e2e.threads);
    json_values[std::string("interpreted_") + key + "_ms"] =
        e2e.interpreted_ms;
    json_values[std::string("frozen_") + key + "_ms"] = e2e.frozen_ms;
    json_values[std::string("frozen_speedup_") + key] = e2e.speedup;
  }
  json_values["bit_identical"] = all_identical ? 1.0 : 0.0;

  const bool pass = all_identical &&
                    ngram.speedup >= kRequiredNgramSpeedup &&
                    frozen_speedup_t1 >= kRequiredFrozenSpeedup;
  std::snprintf(line, sizeof(line),
                "bit_identical=%s  ngrams=%.1fx (required %.0fx)  "
                "frozen_t1=%.1fx (required %.0fx)\n",
                all_identical ? "yes" : "NO", ngram.speedup,
                kRequiredNgramSpeedup, frozen_speedup_t1,
                kRequiredFrozenSpeedup);
  report += line;
  std::printf("%s", line);

  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  std::ofstream out("bench_results/perf_infer.txt");
  if (out) {
    out << report;
    std::printf("sweep written to bench_results/perf_infer.txt\n");
  }
  if (bench::update_perf_json("BENCH_perf.json", "perf_infer",
                              json_values)) {
    std::printf("sweep recorded in BENCH_perf.json\n");
  }
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace soteria

int main() { return soteria::run(); }
