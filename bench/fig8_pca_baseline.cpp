// Regenerates Fig. 8: PCA of the graph-theoretic baseline features
// (Alasmary et al. [3]) over 200 random samples per class (scaled),
// showing how well the *baseline's* feature space separates the
// families.
#include <cstdio>

#include "baseline/graph_features.h"
#include "common/harness.h"
#include "common/pca_report.h"

int main() {
  using namespace soteria;
  const auto config = bench::config_from_env();
  dataset::DatasetConfig data_config;
  data_config.scale = config.dataset_scale;
  math::Rng rng(config.seed);
  const auto data = dataset::generate_dataset(data_config, rng);

  constexpr std::size_t kPerClass = 200;
  std::vector<std::vector<float>> rows;
  std::vector<std::string> groups;
  std::array<std::size_t, dataset::kFamilyCount> counted{};
  for (const auto& sample : data.train) {
    auto& count = counted[dataset::family_index(sample.family)];
    if (count >= kPerClass) continue;
    ++count;
    rows.push_back(
        baseline::GraphFeatureBaseline::raw_features(sample.cfg));
    groups.push_back(dataset::family_name(sample.family));
  }

  math::Matrix features(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::copy(rows[r].begin(), rows[r].end(), features.row(r).begin());
  }
  // Standardize columns so node counts do not dominate the PCA.
  for (std::size_t c = 0; c < features.cols(); ++c) {
    double mean = 0.0;
    for (std::size_t r = 0; r < features.rows(); ++r) mean += features(r, c);
    mean /= static_cast<double>(features.rows());
    double var = 0.0;
    for (std::size_t r = 0; r < features.rows(); ++r) {
      const double d = features(r, c) - mean;
      var += d * d;
    }
    var /= static_cast<double>(features.rows());
    const double sd = var > 0.0 ? std::sqrt(var) : 1.0;
    for (std::size_t r = 0; r < features.rows(); ++r) {
      features(r, c) = static_cast<float>((features(r, c) - mean) / sd);
    }
  }

  const auto report = bench::project_2d(features, groups);
  bench::print_pca_report(report,
                          "Fig. 8: PCA of baseline [3] graph-theoretic "
                          "features (per-class distribution)",
                          "fig8_pca.csv");
  std::printf("\npaper shape: classes overlap substantially in the "
              "baseline feature space — Soteria's walk features (Figs. "
              "9-11) separate them more cleanly\n");
  return 0;
}
