// Ablation: random-walk budget — walks per labeling and walk length
// multiplier (the paper uses 10 walks of length 5|V|).
#include <cstdio>

#include "common/ablation.h"

int main() {
  using namespace soteria;
  const std::vector<bench::AblationSetting> settings{
      {"2 walks x 5|V|",
       [](core::SoteriaConfig& c) {
         c.pipeline.walk.walks_per_labeling = 2;
         c.training_vectors_per_sample = 2;
       }},
      {"10 walks x 5|V| (paper)",
       [](core::SoteriaConfig& c) {
         c.pipeline.walk.walks_per_labeling = 10;
       }},
      {"10 walks x 2|V|",
       [](core::SoteriaConfig& c) {
         c.pipeline.walk.length_multiplier = 2.0;
       }},
      {"10 walks x 8|V|",
       [](core::SoteriaConfig& c) {
         c.pipeline.walk.length_multiplier = 8.0;
       }},
  };
  const auto results = bench::run_ablation(settings);
  bench::print_ablation(results, "Ablation: random-walk budget");
  std::printf("expected: fewer/shorter walks raise feature variance and "
              "hurt both detection and classification; beyond the "
              "paper's 5|V| budget the returns flatten\n");
  return 0;
}
