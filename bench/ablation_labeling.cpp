// Ablation: labeling tie-break depth. Soteria's labels rank by density
// with centrality-factor tie-breaks (DBL) or by level (LBL); this bench
// measures what consistent tie-breaking buys by comparing the full
// system against variants with degraded walk randomization.
//
// (The DBL-vs-LBL-vs-voting classifier comparison is Table VII; this
// ablation covers the remaining design choices DESIGN.md lists.)
#include <cstdio>

#include "common/ablation.h"

int main() {
  using namespace soteria;
  const std::vector<bench::AblationSetting> settings{
      {"full system (both labelings)",
       [](core::SoteriaConfig&) {}},
      {"top-100 vocabulary",
       [](core::SoteriaConfig& c) { c.pipeline.top_k = 100; }},
      {"top-500 vocabulary (paper)",
       [](core::SoteriaConfig& c) { c.pipeline.top_k = 500; }},
      {"no TF-IDF L2 normalization",
       [](core::SoteriaConfig& c) { c.pipeline.l2_normalize = false; }},
  };
  const auto results = bench::run_ablation(settings);
  bench::print_ablation(results,
                        "Ablation: vocabulary size and normalization");
  std::printf("expected: the 500-gram vocabulary dominates the 100-gram "
              "one; dropping L2 normalization destabilizes the detector\n");
  return 0;
}
