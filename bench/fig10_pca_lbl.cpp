// Regenerates Fig. 10: PCA of the level-based (LBL) feature vectors —
// (a) per-class distribution, (b) clean vs GEA adversarial examples.
#include "common/feature_pca.h"

int main() {
  return soteria::bench::run_feature_pca(
      soteria::bench::FeatureView::kLbl, "Fig. 10 ", "fig10_pca");
}
