// Regenerates Fig. 11: PCA of the combined (DBL ++ LBL) feature
// vectors — (a) per-class distribution, (b) clean vs GEA adversarial
// examples.
#include "common/feature_pca.h"

int main() {
  return soteria::bench::run_feature_pca(
      soteria::bench::FeatureView::kCombined, "Fig. 11 ", "fig11_pca");
}
