// Reproduces the paper's motivating contrast (Sections II-A and V):
// bytes appended past the end of a binary are an *impractical* AE —
// they change byte-level representations (the image baseline's input)
// but are unreachable, so CFG-based features ignore them. Measures how
// many predictions flip under appending for Soteria vs. the image
// baseline.
#include <cstdio>

#include "attack/binary_gea.h"
#include "baseline/image_classifier.h"
#include "cfg/extractor.h"
#include "common/harness.h"
#include "eval/table.h"

int main() {
  using namespace soteria;
  auto experiment = bench::prepare_experiment();
  auto rng = bench::evaluation_rng(experiment.config);
  auto& system = experiment.system;

  std::fprintf(stderr, "[append] training image baseline...\n");
  baseline::ImageBaselineConfig image_config;
  image_config.seed = experiment.config.seed ^ 0x1a6e;
  auto image_baseline =
      baseline::ImageBaseline::train(experiment.data.train, image_config);

  eval::Table table({"Appended bytes", "Soteria flips %",
                     "Soteria CFG changed %", "Image-baseline flips %"});
  for (const std::size_t appended : {256UL, 1024UL, 4096UL}) {
    std::size_t soteria_flips = 0;
    std::size_t cfg_changed = 0;
    std::size_t image_flips = 0;
    std::size_t counted = 0;
    for (const auto& sample : experiment.data.test) {
      if (counted >= 60) break;  // appending sweep is per-sample cheap,
                                 // analysis is not
      ++counted;
      const auto padded = attack::append_attack(sample.binary, appended,
                                                rng);
      const auto padded_cfg = cfg::extract(padded);
      cfg_changed += padded_cfg.node_count() != sample.cfg.node_count() ||
                     padded_cfg.edge_count() != sample.cfg.edge_count();

      // Identical walk draws on both sides isolate the appending
      // effect from walk randomness.
      math::Rng walks_a(experiment.config.seed ^ sample.id);
      math::Rng walks_b(experiment.config.seed ^ sample.id);
      const auto before = system.analyze(sample.cfg, walks_a);
      const auto after = system.analyze(padded_cfg, walks_b);
      soteria_flips += before.predicted != after.predicted;

      image_flips += image_baseline.predict(sample.binary) !=
                     image_baseline.predict(padded);
    }
    table.add_row(
        {std::to_string(appended),
         eval::format_percent(static_cast<double>(soteria_flips) /
                              static_cast<double>(counted)),
         eval::format_percent(static_cast<double>(cfg_changed) /
                              static_cast<double>(counted)),
         eval::format_percent(static_cast<double>(image_flips) /
                              static_cast<double>(counted))});
  }
  std::printf("%s\n",
              table
                  .render("Robustness: appended-bytes attack — Soteria "
                          "vs image baseline")
                  .c_str());
  std::printf("expected: Soteria's CFG never changes (0%% flips by "
              "construction); the image baseline flips on a visible "
              "fraction of samples\n");
  return 0;
}
