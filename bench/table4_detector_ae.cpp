// Regenerates Table IV: detector performance over the GEA adversarial
// sets — per (target class, size): #AEs, #detected, % detected — plus
// the overall AE detection accuracy (the paper's 97.79% headline).
#include <cstdio>

#include "common/evaluation.h"
#include "eval/table.h"

int main() {
  using namespace soteria;
  auto experiment = bench::prepare_experiment();
  auto rng = bench::evaluation_rng(experiment.config);
  const auto aes = bench::evaluate_adversarial(experiment, rng);

  eval::Table table({"Class", "Size", "# AEs", "# Detected", "% Detected"});
  std::size_t total = 0;
  std::size_t detected = 0;
  for (auto family : dataset::all_families()) {
    for (std::size_t s = 0; s < dataset::kTargetSizeCount; ++s) {
      const auto size = static_cast<dataset::TargetSize>(s);
      std::size_t set_total = 0;
      std::size_t set_detected = 0;
      for (const auto& ae : aes) {
        if (ae.target != family || ae.size != size) continue;
        ++set_total;
        if (ae.flagged) ++set_detected;
      }
      total += set_total;
      detected += set_detected;
      table.add_row({dataset::family_name(family),
                     dataset::target_size_name(size),
                     std::to_string(set_total),
                     std::to_string(set_detected),
                     set_total == 0
                         ? "-"
                         : eval::format_percent(
                               static_cast<double>(set_detected) /
                               static_cast<double>(set_total))});
    }
  }
  table.add_row({"Overall", "-", std::to_string(total),
                 std::to_string(detected),
                 total == 0 ? "-"
                            : eval::format_percent(
                                  static_cast<double>(detected) /
                                  static_cast<double>(total))});
  std::printf("%s\n",
              table
                  .render("Table IV: detector performance over GEA "
                          "adversarial examples")
                  .c_str());
  std::printf("paper: overall 97.79%% detected; 9 of 12 target sets above "
              "99%%; misses concentrated on Large targets\n");
  return 0;
}
