// Regenerates Table V (inferred from the text: the distribution of
// discriminative vocabulary features across classes — the paper
// attributes Gafgyt's clean false positives to its "high number of
// discriminative features"). For each selected gram we find the class
// with the highest mean term frequency; the table counts how many of
// the top-500 grams each class "owns" under each labeling.
#include <cstdio>

#include "common/harness.h"
#include "eval/table.h"

int main() {
  using namespace soteria;
  auto experiment = bench::prepare_experiment();
  auto rng = bench::evaluation_rng(experiment.config);
  const auto& pipeline = experiment.system.pipeline();

  // Mean TF-IDF per class per labeling, over up to 50 train samples per
  // class (the paper's feature analysis uses 200 per class at full
  // scale).
  constexpr std::size_t kPerClass = 50;
  std::vector<std::vector<double>> dbl_mean(
      dataset::kFamilyCount,
      std::vector<double>(pipeline.dbl_vocabulary().size(), 0.0));
  std::vector<std::vector<double>> lbl_mean(
      dataset::kFamilyCount,
      std::vector<double>(pipeline.lbl_vocabulary().size(), 0.0));
  std::array<std::size_t, dataset::kFamilyCount> counted{};

  for (const auto& sample : experiment.data.train) {
    const auto class_index = dataset::family_index(sample.family);
    if (counted[class_index] >= kPerClass) continue;
    ++counted[class_index];
    const auto features = pipeline.extract(sample.cfg, rng);
    for (std::size_t i = 0; i < features.pooled_dbl.size(); ++i) {
      dbl_mean[class_index][i] += features.pooled_dbl[i];
    }
    for (std::size_t i = 0; i < features.pooled_lbl.size(); ++i) {
      lbl_mean[class_index][i] += features.pooled_lbl[i];
    }
  }
  for (std::size_t c = 0; c < dataset::kFamilyCount; ++c) {
    if (counted[c] == 0) continue;
    for (auto& v : dbl_mean[c]) v /= static_cast<double>(counted[c]);
    for (auto& v : lbl_mean[c]) v /= static_cast<double>(counted[c]);
  }

  const auto owners = [](const std::vector<std::vector<double>>& means,
                         std::size_t dims) {
    std::array<std::size_t, dataset::kFamilyCount> won{};
    for (std::size_t i = 0; i < dims; ++i) {
      std::size_t best = 0;
      for (std::size_t c = 1; c < dataset::kFamilyCount; ++c) {
        if (means[c][i] > means[best][i]) best = c;
      }
      ++won[best];
    }
    return won;
  };
  const auto dbl_owned = owners(dbl_mean, pipeline.dbl_vocabulary().size());
  const auto lbl_owned = owners(lbl_mean, pipeline.lbl_vocabulary().size());

  eval::Table table({"Class", "# DBL features", "# LBL features", "Total"});
  for (auto family : dataset::all_families()) {
    const auto i = dataset::family_index(family);
    table.add_row({dataset::family_name(family),
                   std::to_string(dbl_owned[i]),
                   std::to_string(lbl_owned[i]),
                   std::to_string(dbl_owned[i] + lbl_owned[i])});
  }
  std::printf("%s\n",
              table
                  .render("Table V (inferred): discriminative vocabulary "
                          "features owned per class")
                  .c_str());
  std::printf("paper: cites the class with the most discriminative "
              "features (Gafgyt there) to explain that class's clean "
              "false positives; in this corpus feature ownership follows "
              "the classes with the most distinctive CFG shapes\n");
  return 0;
}
