// Regenerates Fig. 13: the effect of the threshold multiplier alpha on
// the detector's two error rates —
//   * clean error: fraction of clean samples flagged as AEs, and
//   * adversarial error: fraction of AEs NOT flagged —
// for alpha in [0, 2]. The paper's shape: at alpha=0 every AE is caught
// but >60% of clean samples are flagged; at alpha=2 the reverse; the
// operating point is the crossover.
#include <cstdio>

#include "common/evaluation.h"
#include "eval/table.h"

int main() {
  using namespace soteria;
  auto experiment = bench::prepare_experiment();
  auto rng = bench::evaluation_rng(experiment.config);
  const auto clean = bench::evaluate_clean(experiment, rng);
  const auto aes = bench::evaluate_adversarial(experiment, rng);

  const double mean = experiment.system.detector().training_mean();
  const double stddev = experiment.system.detector().training_stddev();

  eval::Table table(
      {"alpha", "Threshold", "Clean error %", "Adversarial error %"});
  double crossover_alpha = -1.0;
  double previous_gap = 0.0;
  for (int step = 0; step <= 20; ++step) {
    const double alpha = 0.1 * step;
    const double threshold = mean + alpha * stddev;
    std::size_t clean_flagged = 0;
    for (const auto& s : clean) {
      if (s.reconstruction_error > threshold) ++clean_flagged;
    }
    std::size_t ae_missed = 0;
    for (const auto& ae : aes) {
      if (!(ae.reconstruction_error > threshold)) ++ae_missed;
    }
    const double clean_error = clean.empty()
                                   ? 0.0
                                   : static_cast<double>(clean_flagged) /
                                         static_cast<double>(clean.size());
    const double ae_error = aes.empty()
                                ? 0.0
                                : static_cast<double>(ae_missed) /
                                      static_cast<double>(aes.size());
    const double gap = clean_error - ae_error;
    if (step > 0 && crossover_alpha < 0.0 && previous_gap > 0.0 &&
        gap <= 0.0) {
      crossover_alpha = alpha;
    }
    previous_gap = gap;
    table.add_row({eval::format_double(alpha, 1),
                   eval::format_double(threshold, 4),
                   eval::format_percent(clean_error),
                   eval::format_percent(ae_error)});
  }
  std::printf("%s\n",
              table
                  .render("Fig. 13: detection error vs. threshold "
                          "multiplier alpha")
                  .c_str());
  if (crossover_alpha >= 0.0) {
    std::printf("error-curve crossover near alpha = %.1f (Soteria operates "
                "at alpha = 1.0, chosen without the test set)\n",
                crossover_alpha);
  }
  std::printf("paper: alpha=0 -> all AEs detected but >60%% clean error; "
              "alpha=2 -> no AEs detected, 0%% clean error\n");
  return 0;
}
