// Regenerates Table VII: per-class and overall classification accuracy
// of Soteria's DBL-only, LBL-only, and voting classifiers against the
// two baselines — graph-theoretic features (Alasmary et al. [3]) and
// image-based (Cui et al. [5]).
#include <cstdio>

#include "baseline/graph_features.h"
#include "baseline/image_classifier.h"
#include "common/evaluation.h"
#include "eval/table.h"

int main() {
  using namespace soteria;
  auto experiment = bench::prepare_experiment();
  auto rng = bench::evaluation_rng(experiment.config);
  const auto clean = bench::evaluate_clean(experiment, rng);

  std::fprintf(stderr, "[table7] training graph-feature baseline...\n");
  baseline::GraphBaselineConfig graph_config;
  graph_config.seed = experiment.config.seed ^ 0x6ba5e;
  auto graph_baseline =
      baseline::GraphFeatureBaseline::train(experiment.data.train,
                                            graph_config);
  std::fprintf(stderr, "[table7] training image baseline...\n");
  baseline::ImageBaselineConfig image_config;
  image_config.seed = experiment.config.seed ^ 0x1a6e;
  auto image_baseline =
      baseline::ImageBaseline::train(experiment.data.train, image_config);

  // Per-class accuracy accumulators for the five systems.
  constexpr std::size_t kSystems = 5;  // DBL, LBL, Voting, [3], [5]
  const char* system_names[kSystems] = {"Soteria DBL", "Soteria LBL",
                                        "Soteria Voting", "Graph-based [3]",
                                        "Image-based [5]"};
  std::size_t correct[kSystems][dataset::kFamilyCount] = {};
  std::size_t totals[dataset::kFamilyCount] = {};

  for (std::size_t i = 0; i < clean.size(); ++i) {
    const auto& sample = experiment.data.test[i];
    const auto truth_index = dataset::family_index(clean[i].truth);
    ++totals[truth_index];
    const dataset::Family predictions[kSystems] = {
        clean[i].dbl_only,
        clean[i].lbl_only,
        clean[i].voted,
        graph_baseline.predict(sample.cfg),
        image_baseline.predict(sample.binary),
    };
    for (std::size_t s = 0; s < kSystems; ++s) {
      if (predictions[s] == clean[i].truth) ++correct[s][truth_index];
    }
  }

  eval::Table table({"Class", "DBL", "LBL", "Voting", "[3]", "[5]"});
  for (auto family : dataset::all_families()) {
    const auto i = dataset::family_index(family);
    std::vector<std::string> row{dataset::family_name(family)};
    for (std::size_t s = 0; s < kSystems; ++s) {
      row.push_back(totals[i] == 0
                        ? "-"
                        : eval::format_percent(
                              static_cast<double>(correct[s][i]) /
                              static_cast<double>(totals[i])));
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> overall{"Overall"};
  std::size_t test_total = 0;
  for (std::size_t i = 0; i < dataset::kFamilyCount; ++i) {
    test_total += totals[i];
  }
  for (std::size_t s = 0; s < kSystems; ++s) {
    std::size_t sum = 0;
    for (std::size_t i = 0; i < dataset::kFamilyCount; ++i) {
      sum += correct[s][i];
    }
    overall.push_back(eval::format_percent(static_cast<double>(sum) /
                                           static_cast<double>(test_total)));
  }
  table.add_row(std::move(overall));

  std::printf("%s\n",
              table
                  .render("Table VII: classification accuracy (%) of "
                          "Soteria vs. baselines on clean samples")
                  .c_str());
  for (std::size_t s = 0; s < kSystems; ++s) {
    (void)system_names[s];
  }
  std::printf("paper: voting overall 99.91%% beats [3] and [5]; the gap is "
              "largest on Tsunami (rare class), where voting reaches "
              "100%%\n");
  return 0;
}
