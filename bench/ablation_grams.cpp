// Ablation: n-gram size sets. The paper uses {2,3,4}; the reproduction
// defaults to {1,2,3,4} because 1-grams (the label visit distribution)
// carry much of the GEA signature at reduced corpus scale. This bench
// quantifies that choice.
#include <cstdio>

#include "common/ablation.h"

int main() {
  using namespace soteria;
  const std::vector<bench::AblationSetting> settings{
      {"grams {2,3,4} (paper)",
       [](core::SoteriaConfig& c) { c.pipeline.gram_sizes = {2, 3, 4}; }},
      {"grams {1,2,3,4} (default)",
       [](core::SoteriaConfig& c) {
         c.pipeline.gram_sizes = {1, 2, 3, 4};
       }},
      {"grams {1,2}",
       [](core::SoteriaConfig& c) { c.pipeline.gram_sizes = {1, 2}; }},
      {"grams {4} only",
       [](core::SoteriaConfig& c) { c.pipeline.gram_sizes = {4}; }},
  };
  const auto results = bench::run_ablation(settings);
  bench::print_ablation(results, "Ablation: n-gram sizes");
  std::printf("expected: adding 1-grams lifts AE detection; very short "
              "gram sets hurt the classifier\n");
  return 0;
}
