// perf_store — cold-vs-warm sweep of the persistent feature store
// through SoteriaSystem::analyze_batch across corpus sizes and thread
// counts. For each (corpus, threads) combination a fresh store
// directory is populated by a cold batch run and then re-read by a
// warm run with the identical batch RNG; we report:
//
//   * cold_ms / warm_ms  — wall-clock of the two runs
//   * speedup            — cold_ms / warm_ms
//   * hits / writes      — store counters after the warm run
//
// Every combination asserts the contract that makes the store safe to
// enable at all: the cold verdicts, the warm verdicts, and a
// store-less baseline are bit-identical (reconstruction error compared
// with exact floating-point equality). The sweep fails if identity is
// violated or the warm path never reaches the required 5x speedup.
//
// Results go to stdout, bench_results/perf_store.txt, and the
// "perf_store" section of the repo-root BENCH_perf.json (read-merge-
// write, other sections preserved). Scale/seed follow the other
// benches' SOTERIA_SCALE / SOTERIA_SEED env vars.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/perf_json.h"
#include "dataset/generator.h"
#include "math/rng.h"
#include "soteria/presets.h"
#include "soteria/system.h"
#include "store/feature_store.h"

namespace soteria {
namespace {

constexpr double kRequiredSpeedup = 5.0;

struct ComboResult {
  std::size_t corpus = 0;
  std::size_t threads = 0;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  double speedup = 0.0;
  std::size_t hits = 0;
  std::size_t writes = 0;
};

bool verdicts_identical(const std::vector<core::Verdict>& a,
                        const std::vector<core::Verdict>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].adversarial != b[i].adversarial ||
        a[i].reconstruction_error != b[i].reconstruction_error ||
        a[i].predicted != b[i].predicted) {
      return false;
    }
  }
  return true;
}

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double, std::milli> delta =
      std::chrono::steady_clock::now() - start;
  return delta.count();
}

ComboResult run_combo(const core::SoteriaSystem& model,
                      const std::vector<cfg::Cfg>& cfgs,
                      std::size_t threads,
                      const std::filesystem::path& store_dir,
                      bool* identical) {
  std::error_code ec;
  std::filesystem::remove_all(store_dir, ec);

  core::AnalyzeOptions off;
  off.num_threads = threads;
  const math::Rng rng(911);
  const auto baseline = model.analyze_batch(cfgs, rng, off);

  core::AnalyzeOptions on = off;
  on.feature_store = std::make_shared<store::FeatureStore>(
      store::StoreConfig{store_dir.string(), /*capacity=*/0});

  const auto cold_start = std::chrono::steady_clock::now();
  const auto cold = model.analyze_batch(cfgs, rng, on);
  const double cold_ms = elapsed_ms(cold_start);

  const auto warm_start = std::chrono::steady_clock::now();
  const auto warm = model.analyze_batch(cfgs, rng, on);
  const double warm_ms = elapsed_ms(warm_start);

  *identical = verdicts_identical(baseline, cold) &&
               verdicts_identical(baseline, warm);

  const auto stats = on.feature_store->stats();
  ComboResult result;
  result.corpus = cfgs.size();
  result.threads = threads;
  result.cold_ms = cold_ms;
  result.warm_ms = warm_ms;
  result.speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
  result.hits = stats.hits;
  result.writes = stats.writes;

  std::filesystem::remove_all(store_dir, ec);
  return result;
}

int run() {
  const char* scale_env = std::getenv("SOTERIA_SCALE");
  const char* seed_env = std::getenv("SOTERIA_SEED");
  const double scale = scale_env ? std::strtod(scale_env, nullptr) : 0.008;
  const std::uint64_t seed =
      seed_env ? std::strtoull(seed_env, nullptr, 10) : 42;

  dataset::DatasetConfig data_config;
  data_config.scale = scale;
  math::Rng rng(seed);
  const auto data = dataset::generate_dataset(data_config, rng);
  const auto config = core::tiny_config();
  const auto model = core::SoteriaSystem::train(data.train, config);

  std::vector<cfg::Cfg> base;
  base.reserve(data.test.size());
  for (const auto& sample : data.test) base.push_back(sample.cfg);
  std::printf("perf_store: %zu test cfgs, scale %.3f, seed %llu\n",
              base.size(), scale,
              static_cast<unsigned long long>(seed));

  const std::filesystem::path store_dir = "perf_store_scratch";
  std::string report =
      "corpus  threads  cold_ms  warm_ms  speedup  hits  writes\n";
  std::map<std::string, double> json_values;
  bool all_identical = true;
  double best_speedup = 0.0;
  // Corpus scaling repeats the test set; each batch index still maps
  // to a distinct store key (the per-index walk seed is part of the
  // key), so a repeated cfg is a genuine extra cold extraction.
  for (const std::size_t multiplier : {1U, 2U, 4U}) {
    std::vector<cfg::Cfg> cfgs;
    cfgs.reserve(base.size() * multiplier);
    for (std::size_t m = 0; m < multiplier; ++m) {
      cfgs.insert(cfgs.end(), base.begin(), base.end());
    }
    for (const std::size_t threads : {1U, 2U, 4U}) {
      bool identical = false;
      const auto result =
          run_combo(model, cfgs, threads, store_dir, &identical);
      all_identical = all_identical && identical;
      best_speedup = std::max(best_speedup, result.speedup);

      char line[160];
      std::snprintf(line, sizeof(line),
                    "%6zu  %7zu  %7.1f  %7.1f  %6.1fx  %4zu  %6zu%s\n",
                    result.corpus, result.threads, result.cold_ms,
                    result.warm_ms, result.speedup, result.hits,
                    result.writes,
                    identical ? "" : "  IDENTITY-VIOLATION");
      report += line;
      std::printf("%s", line);

      char key_buffer[48];
      std::snprintf(key_buffer, sizeof(key_buffer), "c%zu_t%zu_",
                    result.corpus, result.threads);
      const std::string key(key_buffer);
      json_values[key + "cold_ms"] = result.cold_ms;
      json_values[key + "warm_ms"] = result.warm_ms;
      json_values[key + "speedup"] = result.speedup;
    }
  }
  json_values["best_speedup"] = best_speedup;
  json_values["bit_identical"] = all_identical ? 1.0 : 0.0;

  char check[96];
  std::snprintf(check, sizeof(check),
                "bit_identical=%s  best_speedup=%.1fx (required %.0fx)\n",
                all_identical ? "yes" : "NO", best_speedup,
                kRequiredSpeedup);
  report += check;
  std::printf("%s", check);

  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  std::ofstream out("bench_results/perf_store.txt");
  if (out) {
    out << report;
    std::printf("sweep written to bench_results/perf_store.txt\n");
  }
  if (bench::update_perf_json("BENCH_perf.json", "perf_store",
                              json_values)) {
    std::printf("sweep recorded in BENCH_perf.json\n");
  }
  return all_identical && best_speedup >= kRequiredSpeedup ? 0 : 1;
}

}  // namespace
}  // namespace soteria

int main() { return soteria::run(); }
