// Regenerates Table III: the GEA target samples (class x size -> node
// count) and the number of AEs each target generates from the test set.
#include <cstdio>

#include "common/harness.h"
#include "eval/table.h"

int main() {
  using namespace soteria;
  auto experiment = bench::prepare_experiment();

  const auto test_counts =
      dataset::Dataset::class_counts(experiment.data.test);
  const std::size_t test_total = experiment.data.test.size();

  eval::Table table({"Class", "Size", "# Nodes", "# AEs"});
  for (const auto& target : experiment.targets) {
    const std::size_t aes =
        test_total - test_counts[dataset::family_index(target.family)];
    table.add_row({dataset::family_name(target.family),
                   dataset::target_size_name(target.size),
                   std::to_string(target.node_count), std::to_string(aes)});
  }
  std::printf("%s\n",
              table
                  .render("Table III: GEA selected targeted samples "
                          "(scaled reproduction)")
                  .c_str());
  std::printf("paper (full scale): e.g. Benign targets 10/50/443 nodes -> "
              "2742 AEs each; Tsunami targets 15/46/79 nodes -> 3290 AEs "
              "each\n");
  return 0;
}
