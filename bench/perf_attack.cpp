// perf_attack — throughput of the attack framework plus a determinism
// audit of the robustness matrix (custom main; the attackers and the
// matrix runner are the harness).
//
// Two sweeps on a tiny fitted system:
//
//   * AE generation throughput: AEs/second and oracle queries per AE
//     for every registered attacker over the malware test victims;
//     every binary-level AE is executed in the toy VM and must
//     terminate exactly like its victim (status + syscall trace
//     fingerprint), so the numbers only count *practical* AEs.
//   * A small attack x defense matrix run at 1, 2, and 4 threads with
//     a fixed seed; the three reports must be byte-identical, and a
//     re-run at one thread must reproduce the first run exactly.
//
// Results go to stdout, bench_results/perf_attack.txt, and the
// "perf_attack" section of the repo-root BENCH_perf.json. Exit is
// non-zero if any AE breaks its victim's execution or the matrix
// determinism contract is violated. Scale/seed follow the other
// benches' SOTERIA_SCALE / SOTERIA_SEED env vars.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "attack/registry.h"
#include "common/perf_json.h"
#include "dataset/generator.h"
#include "eval/matrix.h"
#include "isa/vm.h"
#include "math/rng.h"
#include "soteria/presets.h"
#include "soteria/system.h"

namespace soteria {
namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int run() {
  const char* scale_env = std::getenv("SOTERIA_SCALE");
  const char* seed_env = std::getenv("SOTERIA_SEED");
  const double scale = scale_env ? std::strtod(scale_env, nullptr) : 0.008;
  const std::uint64_t seed =
      seed_env ? std::strtoull(seed_env, nullptr, 10) : 42;

  dataset::DatasetConfig data_config;
  data_config.scale = scale;
  math::Rng rng(seed);
  const auto data = dataset::generate_dataset(data_config, rng);
  const auto config = core::tiny_config();
  const auto model = core::SoteriaSystem::train(data.train, config);

  std::vector<const dataset::Sample*> victims;
  for (const auto& sample : data.test) {
    if (sample.family != dataset::Family::kBenign &&
        !sample.binary.empty()) {
      victims.push_back(&sample);
    }
  }
  std::printf("perf_attack: %zu malware victims, scale %.3f, seed %llu\n",
              victims.size(), scale,
              static_cast<unsigned long long>(seed));

  std::string report =
      "attacker  aes  aes_per_s  queries_per_ae  broken\n";
  std::map<std::string, double> json_values;
  bool all_practical = true;

  for (const auto name : attack::attacker_names()) {
    const auto attacker =
        attack::make_attacker(name, "target=benign", &model);
    const math::Rng root(seed ^ 0x5eed);
    std::size_t generated = 0;
    std::size_t queries = 0;
    std::size_t broken = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < victims.size(); ++i) {
      math::Rng generate_rng = root.child(i);
      const auto result =
          attacker->generate(*victims[i], data.train, generate_rng);
      ++generated;
      queries += result.queries;
      if (!result.binary.empty()) {
        const auto before = isa::execute(victims[i]->binary);
        const auto after = isa::execute(result.binary);
        const bool practical = after.status == before.status &&
                               after.syscalls == before.syscalls &&
                               after.max_call_depth ==
                                   before.max_call_depth;
        broken += !practical;
      }
    }
    const double elapsed_ms = ms_since(start);
    all_practical = all_practical && broken == 0;

    const double aes_per_s =
        elapsed_ms > 0.0 ? 1000.0 * static_cast<double>(generated) /
                               elapsed_ms
                         : 0.0;
    const double queries_per_ae =
        generated > 0 ? static_cast<double>(queries) /
                            static_cast<double>(generated)
                      : 0.0;
    char line[160];
    std::snprintf(line, sizeof(line), "%-8s  %3zu  %9.1f  %14.1f  %zu%s\n",
                  std::string(name).c_str(), generated, aes_per_s,
                  queries_per_ae, broken,
                  broken == 0 ? "" : "  EXECUTION-BROKEN");
    report += line;
    std::printf("%s", line);

    const std::string key(name);
    json_values[key + "_aes_per_s"] = aes_per_s;
    json_values[key + "_queries_per_ae"] = queries_per_ae;
  }

  // Small matrix: determinism audit across thread counts and re-runs.
  const std::vector<eval::AttackSpec> attacks = {
      {"gea", "gea", "target=benign,size=small"},
      {"adaptive", "adaptive", "target=benign,candidates=2"},
  };
  const std::vector<eval::DefenseSpec> defenses = {
      {"alpha=2", 2.0},
      {"alpha=4", 4.0},
  };
  std::vector<dataset::Sample> matrix_victims;
  for (const dataset::Sample* v : victims) {
    matrix_victims.push_back(*v);
  }
  eval::MatrixOptions options;
  options.seed = seed;
  options.victims_per_cell = 4;

  bool deterministic = true;
  std::string baseline;
  double matrix_ms_1t = 0.0;
  for (const std::size_t threads : {1U, 1U, 2U, 4U}) {
    options.num_threads = threads;
    const auto start = std::chrono::steady_clock::now();
    const auto matrix =
        eval::run_matrix(model, matrix_victims, data.train, attacks,
                         defenses, options);
    const double elapsed = ms_since(start);
    const std::string json = matrix.to_json();
    if (baseline.empty()) {
      baseline = json;
      matrix_ms_1t = elapsed;
    } else {
      deterministic = deterministic && json == baseline;
    }
    char line[96];
    std::snprintf(line, sizeof(line), "matrix t=%zu  %7.1f ms%s\n",
                  threads, elapsed,
                  json == baseline ? "" : "  DETERMINISM-VIOLATION");
    report += line;
    std::printf("%s", line);
  }
  json_values["matrix_ms_1t"] = matrix_ms_1t;
  json_values["matrix_deterministic"] = deterministic ? 1.0 : 0.0;
  json_values["all_practical"] = all_practical ? 1.0 : 0.0;

  char check[96];
  std::snprintf(check, sizeof(check),
                "practical=%s  matrix_deterministic=%s\n",
                all_practical ? "yes" : "NO",
                deterministic ? "yes" : "NO");
  report += check;
  std::printf("%s", check);

  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  std::ofstream out("bench_results/perf_attack.txt");
  if (out) {
    out << report;
    std::printf("sweep written to bench_results/perf_attack.txt\n");
  }
  if (bench::update_perf_json("BENCH_perf.json", "perf_attack",
                              json_values)) {
    std::printf("sweep recorded in BENCH_perf.json\n");
  }
  return all_practical && deterministic ? 0 : 1;
}

}  // namespace
}  // namespace soteria

int main() { return soteria::run(); }
