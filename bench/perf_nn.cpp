// Micro-benchmarks for the NN substrate: matmul, conv1d, and full
// forward/backward passes of the paper architectures (scaled).
#include <benchmark/benchmark.h>

#include "math/matrix.h"
#include "nn/autoencoder.h"
#include "nn/cnn.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"

namespace {

using namespace soteria;

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  math::Rng rng(1);
  math::Matrix a(n, n);
  math::Matrix b(n, n);
  a.fill_normal(rng, 0.0F, 1.0F);
  b.fill_normal(rng, 0.0F, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::matmul(a, b));
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * n * n * n * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(256)->Arg(512);

void BM_AutoencoderForward(benchmark::State& state) {
  math::Rng rng(2);
  nn::AutoencoderConfig config;
  config.input_dim = 1000;
  config.width_scale = 0.1;
  auto model = nn::build_autoencoder(config, rng);
  math::Matrix batch(64, 1000);
  batch.fill_normal(rng, 0.0F, 0.05F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(batch, false));
  }
}
BENCHMARK(BM_AutoencoderForward);

void BM_AutoencoderTrainStep(benchmark::State& state) {
  math::Rng rng(3);
  nn::AutoencoderConfig config;
  config.input_dim = 1000;
  config.width_scale = 0.1;
  auto model = nn::build_autoencoder(config, rng);
  nn::Adam optimizer(1e-3);
  const auto params = model.parameters();
  math::Matrix batch(64, 1000);
  batch.fill_normal(rng, 0.0F, 0.05F);
  for (auto _ : state) {
    model.zero_gradients();
    const auto out = model.forward(batch, true);
    const auto loss = nn::mse_loss(out, batch);
    model.backward(loss.gradient);
    optimizer.step(params);
    benchmark::DoNotOptimize(loss.loss);
  }
}
BENCHMARK(BM_AutoencoderTrainStep);

void BM_CnnForward(benchmark::State& state) {
  math::Rng rng(4);
  nn::CnnConfig config;
  config.input_length = 500;
  config.filters = static_cast<std::size_t>(state.range(0));
  config.dense_units = 128;
  auto model = nn::build_cnn(config, rng);
  math::Matrix batch(32, 500);
  batch.fill_normal(rng, 0.0F, 0.05F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(batch, false));
  }
}
BENCHMARK(BM_CnnForward)->Arg(16)->Arg(46);

void BM_CnnTrainStep(benchmark::State& state) {
  math::Rng rng(5);
  nn::CnnConfig config;
  config.input_length = 500;
  config.filters = 16;
  config.dense_units = 128;
  auto model = nn::build_cnn(config, rng);
  nn::Adam optimizer(1e-3);
  const auto params = model.parameters();
  math::Matrix batch(32, 500);
  batch.fill_normal(rng, 0.0F, 0.05F);
  std::vector<std::size_t> labels(32);
  for (std::size_t i = 0; i < 32; ++i) labels[i] = i % 4;
  for (auto _ : state) {
    model.zero_gradients();
    const auto logits = model.forward(batch, true);
    const auto loss = nn::softmax_cross_entropy(logits, labels);
    model.backward(loss.gradient);
    optimizer.step(params);
    benchmark::DoNotOptimize(loss.loss);
  }
}
BENCHMARK(BM_CnnTrainStep);

}  // namespace

BENCHMARK_MAIN();
