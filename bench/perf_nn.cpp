// Micro-benchmarks for the NN substrate: matmul, conv1d, and full
// forward/backward passes of the paper architectures (scaled) — plus a
// thread-count sweep of concurrent const inference (Sequential::infer).
//
// After the google-benchmark suites, main() trains a small autoencoder
// and CNN with the observability registry enabled and prints the
// per-epoch timing breakdown (also written to
// bench_results/perf_nn_stages.txt when possible).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "common/perf_json.h"
#include "math/matrix.h"
#include "nn/autoencoder.h"
#include "nn/cnn.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"

namespace {

using namespace soteria;

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  math::Rng rng(1);
  math::Matrix a(n, n);
  math::Matrix b(n, n);
  a.fill_normal(rng, 0.0F, 1.0F);
  b.fill_normal(rng, 0.0F, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::matmul(a, b));
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * n * n * n * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(256)->Arg(512);

// The preserved naive oracle at the same shapes, so the blocked
// kernel's margin (and any regression of it) is visible in one run.
void BM_MatmulReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  math::Rng rng(1);
  math::Matrix a(n, n);
  math::Matrix b(n, n);
  a.fill_normal(rng, 0.0F, 1.0F);
  b.fill_normal(rng, 0.0F, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::matmul_reference(a, b));
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * n * n * n * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MatmulReference)->Arg(64)->Arg(256)->Arg(512);

void BM_AutoencoderForward(benchmark::State& state) {
  math::Rng rng(2);
  nn::AutoencoderConfig config;
  config.input_dim = 1000;
  config.width_scale = 0.1;
  auto model = nn::build_autoencoder(config, rng);
  math::Matrix batch(64, 1000);
  batch.fill_normal(rng, 0.0F, 0.05F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(batch, false));
  }
}
BENCHMARK(BM_AutoencoderForward);

void BM_AutoencoderTrainStep(benchmark::State& state) {
  math::Rng rng(3);
  nn::AutoencoderConfig config;
  config.input_dim = 1000;
  config.width_scale = 0.1;
  auto model = nn::build_autoencoder(config, rng);
  nn::Adam optimizer(1e-3);
  const auto params = model.parameters();
  math::Matrix batch(64, 1000);
  batch.fill_normal(rng, 0.0F, 0.05F);
  for (auto _ : state) {
    model.zero_gradients();
    const auto out = model.forward(batch, true);
    const auto loss = nn::mse_loss(out, batch);
    model.backward(loss.gradient);
    optimizer.step(params);
    benchmark::DoNotOptimize(loss.loss);
  }
}
BENCHMARK(BM_AutoencoderTrainStep);

void BM_CnnForward(benchmark::State& state) {
  math::Rng rng(4);
  nn::CnnConfig config;
  config.input_length = 500;
  config.filters = static_cast<std::size_t>(state.range(0));
  config.dense_units = 128;
  auto model = nn::build_cnn(config, rng);
  math::Matrix batch(32, 500);
  batch.fill_normal(rng, 0.0F, 0.05F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(batch, false));
  }
}
BENCHMARK(BM_CnnForward)->Arg(16)->Arg(46);

void BM_CnnTrainStep(benchmark::State& state) {
  math::Rng rng(5);
  nn::CnnConfig config;
  config.input_length = 500;
  config.filters = 16;
  config.dense_units = 128;
  auto model = nn::build_cnn(config, rng);
  nn::Adam optimizer(1e-3);
  const auto params = model.parameters();
  math::Matrix batch(32, 500);
  batch.fill_normal(rng, 0.0F, 0.05F);
  std::vector<std::size_t> labels(32);
  for (std::size_t i = 0; i < 32; ++i) labels[i] = i % 4;
  for (auto _ : state) {
    model.zero_gradients();
    const auto logits = model.forward(batch, true);
    const auto loss = nn::softmax_cross_entropy(logits, labels);
    model.backward(loss.gradient);
    optimizer.step(params);
    benchmark::DoNotOptimize(loss.loss);
  }
}
BENCHMARK(BM_CnnTrainStep);

// Thread sweep: one shared autoencoder, 16 chunks of 16 rows each,
// inferred concurrently through the const Sequential::infer path (the
// same arithmetic SoteriaSystem::analyze_batch runs per sample). The
// sweep verifies once per thread count that chunked parallel inference
// is bit-identical to the serial chunked loop.
void BM_ParallelAutoencoderInfer(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  math::Rng rng(6);
  nn::AutoencoderConfig config;
  config.input_dim = 1000;
  config.width_scale = 0.1;
  const auto model = nn::build_autoencoder(config, rng);
  constexpr std::size_t kChunks = 16;
  constexpr std::size_t kChunkRows = 16;
  std::vector<math::Matrix> chunks;
  for (std::size_t c = 0; c < kChunks; ++c) {
    math::Matrix chunk(kChunkRows, config.input_dim);
    chunk.fill_normal(rng, 0.0F, 0.05F);
    chunks.push_back(std::move(chunk));
  }
  const auto infer_all = [&](std::size_t num_threads) {
    return runtime::parallel_map(
        num_threads, chunks.size(),
        [&](std::size_t c) { return model.infer(chunks[c]); });
  };
  {
    const auto parallel = infer_all(threads);
    const auto serial = infer_all(1);
    for (std::size_t c = 0; c < kChunks; ++c) {
      const auto pd = parallel[c].data();
      const auto sd = serial[c].data();
      if (!std::equal(pd.begin(), pd.end(), sd.begin(), sd.end())) {
        state.SkipWithError("parallel inference diverged from serial");
        return;
      }
    }
  }
  for (auto _ : state) {
    auto out = infer_all(threads);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * kChunks * kChunkRows));
}
BENCHMARK(BM_ParallelAutoencoderInfer)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(static_cast<std::int64_t>(soteria::runtime::hardware_threads()))
    ->UseRealTime();

/// Hand-timed GEMM GFLOP/s for the blocked kernel and the preserved
/// naive reference, recorded in the "perf_nn" section of
/// BENCH_perf.json so kernel regressions show up independently of the
/// end-to-end sweeps.
void emit_gemm_gflops() {
  std::map<std::string, double> json_values;
  std::string report = "-- GEMM GFLOP/s (blocked vs reference) --\n";
  for (const std::size_t n : {256U, 512U}) {
    math::Rng rng(7);
    math::Matrix a(n, n);
    math::Matrix b(n, n);
    a.fill_normal(rng, 0.0F, 1.0F);
    b.fill_normal(rng, 0.0F, 1.0F);
    const double flops = 2.0 * static_cast<double>(n) * n * n;

    const auto time_gflops = [&](auto&& kernel) {
      // Enough iterations to cross ~100ms of work.
      double best = 0.0;
      for (std::size_t rep = 0; rep < 3; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(kernel(a, b));
        const std::chrono::duration<double> delta =
            std::chrono::steady_clock::now() - start;
        best = std::max(best, flops / delta.count() * 1e-9);
      }
      return best;
    };
    const double blocked = time_gflops(
        [](const math::Matrix& x, const math::Matrix& y) {
          return math::matmul(x, y);
        });
    const double reference = time_gflops(
        [](const math::Matrix& x, const math::Matrix& y) {
          return math::matmul_reference(x, y);
        });

    char line[120];
    std::snprintf(line, sizeof(line),
                  "n=%zu  blocked %6.2f GFLOP/s  reference %6.2f GFLOP/s  "
                  "%4.1fx\n",
                  n, blocked, reference,
                  reference > 0.0 ? blocked / reference : 0.0);
    report += line;

    char key[48];
    std::snprintf(key, sizeof(key), "gemm_%zu_", n);
    json_values[std::string(key) + "blocked_gflops"] = blocked;
    json_values[std::string(key) + "reference_gflops"] = reference;
    json_values[std::string(key) + "speedup"] =
        reference > 0.0 ? blocked / reference : 0.0;
  }
  std::printf("\n%s", report.c_str());
  if (soteria::bench::update_perf_json("BENCH_perf.json", "perf_nn",
                                       json_values)) {
    std::printf("GEMM GFLOP/s recorded in BENCH_perf.json\n");
  }
}

/// Trains a small autoencoder and CNN with metrics on and exports the
/// per-epoch spans, loss gauge, and epoch counters.
void emit_stage_breakdown() {
  obs::registry().reset();
  obs::set_enabled(true);

  math::Rng rng(11);
  {
    const obs::Span span("perf_nn.autoencoder");
    nn::AutoencoderConfig config;
    config.input_dim = 200;
    config.width_scale = 0.1;
    auto model = nn::build_autoencoder(config, rng);
    nn::Adam optimizer(1e-3);
    math::Matrix batch(96, config.input_dim);
    batch.fill_normal(rng, 0.0F, 0.05F);
    (void)nn::train_regression(model, batch, batch, optimizer,
                               nn::make_train_config(6, 32), rng);
  }
  {
    const obs::Span span("perf_nn.cnn");
    nn::CnnConfig config;
    config.input_length = 200;
    config.filters = 8;
    config.dense_units = 32;
    auto model = nn::build_cnn(config, rng);
    nn::Adam optimizer(1e-3);
    math::Matrix batch(96, config.input_length);
    batch.fill_normal(rng, 0.0F, 0.05F);
    std::vector<std::size_t> labels(96);
    for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = i % 4;
    (void)nn::train_classifier(model, batch, labels, optimizer,
                               nn::make_train_config(6, 32), rng);
  }

  obs::set_enabled(false);
  const auto report = obs::export_text(obs::registry().snapshot());
  std::printf("\n-- training stage breakdown --\n%s", report.c_str());

  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  std::ofstream out("bench_results/perf_nn_stages.txt");
  if (out) {
    out << report;
    std::printf(
        "stage breakdown written to bench_results/perf_nn_stages.txt\n");
  } else {
    std::printf("bench_results/ not writable; breakdown not persisted\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_gemm_gflops();
  emit_stage_breakdown();
  return 0;
}
