// Micro-benchmarks for the feature substrate: random walks, n-gram
// counting, TF-IDF vectorization, and full per-sample extraction.
#include <benchmark/benchmark.h>

#include "features/pipeline.h"
#include "graph/generators.h"

namespace {

using namespace soteria;

cfg::Cfg make_cfg(std::size_t n) {
  math::Rng rng(42);
  return cfg::Cfg(
      graph::random_connected_dag_plus(n, 4.0 / static_cast<double>(n),
                                       rng),
      0);
}

features::FeaturePipeline make_pipeline(std::size_t corpus_size) {
  math::Rng rng(1);
  std::vector<cfg::Cfg> corpus;
  for (std::size_t i = 0; i < corpus_size; ++i) {
    corpus.push_back(make_cfg(40 + rng.index(60)));
  }
  features::PipelineConfig config;
  config.gram_sizes = {1, 2, 3, 4};
  return features::FeaturePipeline::fit(corpus, config, rng);
}

void BM_RandomWalk(benchmark::State& state) {
  const auto cfg = make_cfg(static_cast<std::size_t>(state.range(0)));
  const features::UndirectedView view(cfg);
  const std::size_t steps = 5 * cfg.node_count();
  math::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        features::random_walk_nodes(view, steps, rng));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * steps));
}
BENCHMARK(BM_RandomWalk)->Arg(32)->Arg(128)->Arg(512);

void BM_GramCounting(benchmark::State& state) {
  const auto cfg = make_cfg(128);
  const auto labels = cfg::label_nodes(cfg, cfg::LabelingMethod::kDensity);
  math::Rng rng(3);
  const auto walks =
      features::labeled_walks(cfg, labels, features::WalkConfig{}, rng);
  const std::vector<std::size_t> sizes{1, 2, 3, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::count_grams(walks, sizes));
  }
}
BENCHMARK(BM_GramCounting);

void BM_TfidfVector(benchmark::State& state) {
  auto pipeline = make_pipeline(24);
  const auto cfg = make_cfg(96);
  math::Rng rng(4);
  const auto counts = pipeline.gram_counts(
      cfg, cfg::LabelingMethod::kDensity, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pipeline.dbl_vocabulary().tfidf_vector(counts));
  }
}
BENCHMARK(BM_TfidfVector);

void BM_FullExtraction(benchmark::State& state) {
  auto pipeline = make_pipeline(24);
  const auto cfg = make_cfg(static_cast<std::size_t>(state.range(0)));
  math::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.extract(cfg, rng));
  }
}
BENCHMARK(BM_FullExtraction)->Arg(32)->Arg(128)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
