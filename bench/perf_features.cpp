// Micro-benchmarks for the feature substrate: random walks, n-gram
// counting, TF-IDF vectorization, and full per-sample extraction — plus
// a thread-count sweep of the parallel batch engine over a corpus.
//
// After the google-benchmark suites, main() runs a tiny end-to-end
// train + analyze_batch with the observability registry enabled and
// prints the per-stage timing breakdown (also written to
// bench_results/perf_features_stages.txt when that directory exists or
// can be created).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/perf_json.h"
#include "dataset/generator.h"
#include "features/pipeline.h"
#include "graph/generators.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "soteria/presets.h"
#include "soteria/system.h"

namespace {

using namespace soteria;

cfg::Cfg make_cfg(std::size_t n) {
  math::Rng rng(42);
  return cfg::Cfg(
      graph::random_connected_dag_plus(n, 4.0 / static_cast<double>(n),
                                       rng),
      0);
}

features::FeaturePipeline make_pipeline(std::size_t corpus_size) {
  math::Rng rng(1);
  std::vector<cfg::Cfg> corpus;
  for (std::size_t i = 0; i < corpus_size; ++i) {
    corpus.push_back(make_cfg(40 + rng.index(60)));
  }
  features::PipelineConfig config;
  config.gram_sizes = {1, 2, 3, 4};
  return features::FeaturePipeline::fit(corpus, config, rng);
}

void BM_RandomWalk(benchmark::State& state) {
  const auto cfg = make_cfg(static_cast<std::size_t>(state.range(0)));
  const features::UndirectedView view(cfg);
  const std::size_t steps = 5 * cfg.node_count();
  math::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        features::random_walk_nodes(view, steps, rng));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * steps));
}
BENCHMARK(BM_RandomWalk)->Arg(32)->Arg(128)->Arg(512);

void BM_GramCounting(benchmark::State& state) {
  const auto cfg = make_cfg(128);
  const auto labels = cfg::label_nodes(cfg, cfg::LabelingMethod::kDensity);
  math::Rng rng(3);
  const auto walks =
      features::labeled_walks(cfg, labels, features::WalkConfig{}, rng);
  const std::vector<std::size_t> sizes{1, 2, 3, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::count_grams(walks, sizes));
  }
}
BENCHMARK(BM_GramCounting);

void BM_TfidfVector(benchmark::State& state) {
  auto pipeline = make_pipeline(24);
  const auto cfg = make_cfg(96);
  math::Rng rng(4);
  const auto counts = pipeline.gram_counts(
      cfg, cfg::LabelingMethod::kDensity, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pipeline.dbl_vocabulary().tfidf_vector(counts));
  }
}
BENCHMARK(BM_TfidfVector);

void BM_FullExtraction(benchmark::State& state) {
  auto pipeline = make_pipeline(24);
  const auto cfg = make_cfg(static_cast<std::size_t>(state.range(0)));
  math::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.extract(cfg, rng));
  }
}
BENCHMARK(BM_FullExtraction)->Arg(32)->Arg(128)->Arg(512);

// Thread sweep: the same 32-sample corpus extraction that dominates
// SoteriaSystem::train, run through runtime::parallel_map at 1/2/4/N
// threads. Before timing, the sweep verifies the determinism contract
// once per thread count: parallel output must be bit-identical to the
// serial loop (sample i always draws from rng.child(i)).
void BM_ParallelCorpusExtraction(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  auto pipeline = make_pipeline(24);
  math::Rng corpus_rng(6);
  std::vector<cfg::Cfg> corpus;
  for (std::size_t i = 0; i < 32; ++i) {
    corpus.push_back(make_cfg(64 + corpus_rng.index(64)));
  }
  const math::Rng rng(7);
  const auto extract_pooled = [&](std::size_t num_threads) {
    return runtime::parallel_map(
        num_threads, corpus.size(), [&](std::size_t i) {
          math::Rng sample_rng = rng.child(i);
          return pipeline.extract(corpus[i], sample_rng).pooled_combined();
        });
  };
  if (extract_pooled(threads) != extract_pooled(1)) {
    state.SkipWithError("parallel extraction diverged from serial");
    return;
  }
  for (auto _ : state) {
    auto out = runtime::parallel_map(
        threads, corpus.size(), [&](std::size_t i) {
          math::Rng sample_rng = rng.child(i);
          return pipeline.extract(corpus[i], sample_rng);
        });
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * corpus.size()));
}
BENCHMARK(BM_ParallelCorpusExtraction)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(static_cast<std::int64_t>(soteria::runtime::hardware_threads()))
    ->UseRealTime();

/// End-to-end stage breakdown: generate a tiny corpus, train the full
/// system, analyze the test split — all with metrics on — then export
/// the timing tree covering extraction, labeling, walks, n-grams,
/// TF-IDF, detector, and classifier stages.
void emit_stage_breakdown() {
  obs::registry().reset();
  obs::set_enabled(true);

  dataset::DatasetConfig data_config;
  data_config.scale = 0.008;
  math::Rng rng(42);
  const auto data = dataset::generate_dataset(data_config, rng);
  auto config = core::tiny_config();
  const auto system = core::SoteriaSystem::train(data.train, config);

  std::vector<cfg::Cfg> cfgs;
  cfgs.reserve(data.test.size());
  for (const auto& sample : data.test) cfgs.push_back(sample.cfg);
  const math::Rng analyze_rng(7);
  (void)system.analyze_batch(cfgs, analyze_rng, core::AnalyzeOptions{});

  obs::set_enabled(false);
  const auto snapshot = obs::registry().snapshot();
  const auto report = obs::export_text(snapshot);
  std::printf("\n-- end-to-end stage breakdown (tiny corpus) --\n%s",
              report.c_str());

  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  std::ofstream out("bench_results/perf_features_stages.txt");
  if (out) {
    out << report;
    std::printf("stage breakdown written to "
                "bench_results/perf_features_stages.txt\n");
  } else {
    std::printf("bench_results/ not writable; breakdown not persisted\n");
  }
  // Machine-readable stage means (ms per span path) for trend tracking.
  if (bench::update_perf_json("BENCH_perf.json", "perf_features",
                              bench::stage_means_ms(snapshot))) {
    std::printf("stage means recorded in BENCH_perf.json\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_stage_breakdown();
  return 0;
}
